package simeng

import "armdse/internal/isa"

// renameUnit is the rename stage component: the per-class architectural
// producer map and the physical-register free-list accounting.
type renameUnit struct {
	regProducer [isa.NumRegClasses][]int64
	inFlight    [isa.NumRegClasses]int
	physAvail   [isa.NumRegClasses]int
}

func (u *renameUnit) init(cfg Config) {
	for cl := 0; cl < isa.NumRegClasses; cl++ {
		arch := isa.RegClass(cl).ArchRegs()
		u.regProducer[cl] = make([]int64, arch)
		for i := range u.regProducer[cl] {
			u.regProducer[cl][i] = -1
		}
	}
	u.physAvail[isa.GP] = cfg.GPRegisters - isa.GP.ArchRegs()
	u.physAvail[isa.FP] = cfg.FPSVERegisters - isa.FP.ArchRegs()
	u.physAvail[isa.Pred] = cfg.PredRegisters - isa.Pred.ArchRegs()
	u.physAvail[isa.Cond] = cfg.CondRegisters - isa.Cond.ArchRegs()
}

// renameStage maps fetched instructions' sources to producer sequence
// numbers and claims physical destination registers, stalling (and posting
// to the stall bus) when a class's free list is exhausted.
func (c *Core) renameStage() {
	u := &c.rename
	for n := 0; n < c.cfg.FrontendWidth && !c.fetchQ.Empty() && !c.renameQ.Full(); n++ {
		in := c.fetchQ.Peek()
		// Check free physical registers for every destination class.
		var need [isa.NumRegClasses]int
		for i := 0; i < int(in.NDests); i++ {
			need[in.Dests[i].Class]++
		}
		for cl := 0; cl < isa.NumRegClasses; cl++ {
			if need[cl] > 0 && u.inFlight[cl]+need[cl] > u.physAvail[cl] {
				c.stats.RenameStalls[cl]++
				c.bus.renameBlocked = true
				return
			}
		}
		inst := c.fetchQ.Pop()
		seq := c.seqRenamed
		c.seqRenamed++
		var r renamed
		r.op = inst.Op
		r.sve = inst.SVE
		r.pc = inst.PC
		r.nd = inst.NDests
		r.ns = inst.NSrcs
		if inst.Op.IsMem() {
			if inst.Mem.Bytes == 0 {
				c.fail("simeng: zero-byte memory access at pc %#x", inst.PC)
				return
			}
			r.addr = inst.Mem.Addr
			r.bytes = inst.Mem.Bytes
		}
		for i := 0; i < int(inst.NSrcs); i++ {
			s := inst.Srcs[i]
			if int(s.ID) >= len(u.regProducer[s.Class]) {
				c.fail("simeng: source register %v out of architectural range at pc %#x", s, inst.PC)
				return
			}
			r.srcSeq[i] = u.regProducer[s.Class][s.ID]
		}
		for i := 0; i < int(inst.NDests); i++ {
			d := inst.Dests[i]
			if int(d.ID) >= len(u.regProducer[d.Class]) {
				c.fail("simeng: destination register %v out of architectural range at pc %#x", d, inst.PC)
				return
			}
			u.regProducer[d.Class][d.ID] = seq
			r.destClass[i] = uint8(d.Class)
			u.inFlight[d.Class]++
		}
		c.renameQ.Push(r)
		c.progress = true
	}
}
