package simeng

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"armdse/internal/isa"
)

// randomProgram builds a random but structurally valid instruction stream:
// register indices within architectural bounds, memory accesses inside a
// 1 MiB window, branches resolved not-taken.
func randomProgram(rng *rand.Rand, n int) []isa.Inst {
	insts := make([]isa.Inst, n)
	groups := []isa.Group{
		isa.IntALU, isa.IntMul, isa.IntDiv,
		isa.FPAdd, isa.FPMul, isa.FPFMA, isa.FPDiv,
		isa.SVEAdd, isa.SVEMul, isa.SVEFMA,
		isa.PredOp, isa.Load, isa.Store, isa.Branch,
	}
	for i := range insts {
		g := groups[rng.Intn(len(groups))]
		in := &insts[i]
		in.Op = g
		in.PC = 0x1000 + uint64(i*isa.InstBytes)
		switch {
		case g == isa.Branch:
			in.AddSrc(isa.R(isa.Cond, 0))
			in.Branch = isa.BranchInfo{Taken: false}
		case g == isa.PredOp:
			in.AddDest(isa.R(isa.Pred, rng.Intn(16)))
			if rng.Intn(2) == 0 {
				in.AddDest(isa.R(isa.Cond, 0))
			}
			in.AddSrc(isa.R(isa.GP, rng.Intn(32)))
		case g.IsMem():
			width := []uint32{4, 8, 16, 32, 64}[rng.Intn(5)]
			addr := uint64(1<<20) + uint64(rng.Intn(1<<20-int(width)))
			in.Mem = isa.MemRef{Addr: addr, Bytes: width}
			if g == isa.Load {
				in.AddDest(isa.R(isa.FP, rng.Intn(32)))
			} else {
				in.AddSrc(isa.R(isa.FP, rng.Intn(32)))
			}
			in.AddSrc(isa.R(isa.GP, rng.Intn(32)))
			in.SVE = width >= 16
		case g.IsVector():
			in.SVE = true
			in.AddDest(isa.R(isa.FP, rng.Intn(32)))
			in.AddSrc(isa.R(isa.FP, rng.Intn(32)))
			in.AddSrc(isa.R(isa.FP, rng.Intn(32)))
		case g >= isa.FPAdd && g <= isa.FPDiv:
			in.AddDest(isa.R(isa.FP, rng.Intn(32)))
			in.AddSrc(isa.R(isa.FP, rng.Intn(32)))
		default:
			in.AddDest(isa.R(isa.GP, rng.Intn(32)))
			in.AddSrc(isa.R(isa.GP, rng.Intn(32)))
			if rng.Intn(3) == 0 {
				in.AddSrc(isa.R(isa.GP, rng.Intn(32)))
			}
		}
	}
	return insts
}

// randomConfig draws a small-but-valid core configuration.
func randomConfig(rng *rand.Rand) Config {
	pow2 := func(lo, hi int) int {
		v := lo
		for v*2 <= hi && rng.Intn(2) == 0 {
			v *= 2
		}
		return v
	}
	cfg := Config{
		VectorLength:        pow2(128, 2048),
		FetchBlockSize:      pow2(4, 256),
		LoopBufferSize:      rng.Intn(64),
		GPRegisters:         40 + 8*rng.Intn(20),
		FPSVERegisters:      40 + 8*rng.Intn(20),
		PredRegisters:       24 + 8*rng.Intn(20),
		CondRegisters:       8 + 8*rng.Intn(20),
		CommitWidth:         1 + rng.Intn(8),
		FrontendWidth:       1 + rng.Intn(8),
		LSQCompletionWidth:  1 + rng.Intn(4),
		ROBSize:             8 + 4*rng.Intn(40),
		LoadQueueSize:       4 + 4*rng.Intn(16),
		StoreQueueSize:      4 + 4*rng.Intn(16),
		LoadBandwidth:       1024,
		StoreBandwidth:      1024,
		MemRequestsPerCycle: 1 + rng.Intn(8),
		MemLoadsPerCycle:    1 + rng.Intn(4),
		MemStoresPerCycle:   1 + rng.Intn(4),
	}
	return cfg
}

// TestRandomProgramsTerminateWithinBounds is the engine's central safety
// property: any structurally valid program on any valid configuration
// terminates without deadlock, retires everything, and lands between the
// commit-width lower bound and a generous serial upper bound.
func TestRandomProgramsTerminateWithinBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(300)
		insts := randomProgram(rng, n)
		cfg := randomConfig(rng)
		if err := cfg.Validate(); err != nil {
			t.Logf("config invalid: %v", err)
			return false
		}
		st, err := Simulate(cfg, testMem(), isa.NewSliceStream(insts))
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if st.Retired != int64(n) {
			t.Logf("seed %d: retired %d of %d", seed, st.Retired, n)
			return false
		}
		// Lower bound: commit width is a hard cap.
		if lb := int64(n / cfg.CommitWidth); st.Cycles < lb {
			t.Logf("seed %d: %d cycles below commit bound %d", seed, st.Cycles, lb)
			return false
		}
		// Upper bound: fully serial execution with every memory access a
		// RAM miss, plus constant slack.
		ub := int64(n)*(int64(isa.SVEDiv.Latency())+250) + 10_000
		if st.Cycles > ub {
			t.Logf("seed %d: %d cycles above serial bound %d", seed, st.Cycles, ub)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRandomProgramsDeterministic re-runs random programs and demands
// identical statistics.
func TestRandomProgramsDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(200)
		insts := randomProgram(rng, n)
		cfg := randomConfig(rng)
		a, err := Simulate(cfg, testMem(), isa.NewSliceStream(insts))
		if err != nil {
			return false
		}
		b, err := Simulate(cfg, testMem(), isa.NewSliceStream(insts))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
