package simeng

import "armdse/internal/isa"

// commitStage retires finished instructions from the head of the window, in
// program order, up to CommitWidth per cycle. Committed stores hand their
// write to the LSQ's post-commit drain queue. Each retirement is posted to
// the stall bus — a cycle with any commit is a Busy cycle.
func (c *Core) commitStage() {
	for n := 0; n < c.cfg.CommitWidth && c.seqCommitted < c.seqDispatched; n++ {
		e := &c.window[c.seqCommitted&c.wmask]
		if e.state != stExec || e.resultAt > c.cycle {
			return
		}
		if c.tracer != nil {
			c.tracer(TraceEvent{
				Seq:        c.seqCommitted,
				PC:         e.pc,
				Op:         e.op,
				SVE:        e.sve,
				Dispatched: e.dispatchedAt,
				Issued:     e.issuedAt,
				Done:       e.resultAt,
				Committed:  c.cycle,
			})
		}
		c.stats.Retired++
		c.bus.committed++
		if e.sve {
			c.stats.SVERetired++
		}
		switch e.op {
		case isa.Load:
			c.stats.Loads++
			c.lsq.lqCount--
		case isa.Store:
			c.stats.Stores++
			// The write drains post-commit; the SQ entry is held until
			// its line requests have issued.
			c.lsq.storeWriteQ.Push(storeWrite{nextLine: e.addr, startAddr: e.addr, endAddr: e.endAddr})
		case isa.Branch:
			c.stats.Branches++
		}
		for i := 0; i < int(e.nd); i++ {
			c.rename.inFlight[e.destClass[i]]--
		}
		e.state = stFree
		c.seqCommitted++
		c.progress = true
	}
}
