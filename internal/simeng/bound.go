package simeng

import (
	"fmt"
	"math"

	"armdse/internal/isa"
)

// Analytical cycle bounds. BoundModel computes roofline-style lower and
// upper bounds on a run's cycle count from a configuration plus the
// configuration-independent stream statistics of the workload
// (isa.StreamStats) — no simulation. Each lower-bound term is a resource
// that must process the whole stream at a bounded rate (commit width,
// frontend width, dispatch rate, execution ports, LSQ completion, core-L1
// byte bandwidth, per-cycle request budgets, RAM line bandwidth); the run
// can never finish before the slowest of them. The upper bound is a
// deliberately loose serial schedule. The bounds describe the sst memory
// backend (write-allocate caches in front of a bandwidth-paced RAM); for
// other backends they are model features, not guarantees — the golden
// bracket fixture pins them against exact sst simulation.

// MemProfile is the backend-neutral memory timing summary the bound model
// consumes: capacities plus per-level latencies already scaled to core
// cycles. params.Config.MemProfile derives one from an sstmem.Config; the
// indirection keeps simeng free of a dependency on the memory package.
type MemProfile struct {
	// LineBytes is the cache line width at every level.
	LineBytes int
	// L1Bytes and L2Bytes are the cache capacities.
	L1Bytes int64
	L2Bytes int64
	// L1Latency, L2Latency and RAMLatency are hit/access latencies in
	// core cycles.
	L1Latency  int64
	L2Latency  int64
	RAMLatency int64
	// RAMInterval is the core-cycle spacing between successive RAM
	// request starts (the 64-byte-reference bandwidth pacing of the sst
	// hierarchy).
	RAMInterval float64
}

// BoundTerms are the individual lower-bound terms in core cycles; Lower is
// their maximum. Each is exported so the hybrid evaluator can feed
// term-dominance ratios to the residual model and so reports can name the
// binding resource.
type BoundTerms struct {
	// Retire: instructions / commit width.
	Retire int64
	// Frontend: instructions / frontend width.
	Frontend int64
	// Dispatch: instructions / dispatch rate into the RS.
	Dispatch int64
	// Port: the tightest execution-port class bound — for each set of
	// groups accepted by an identical port set, occupied port-cycles
	// divided by the number of ports.
	Port int64
	// LSQ: memory instructions / LSQ completion width.
	LSQ int64
	// LoadBW and StoreBW: bytes moved / core-L1 bandwidth per kind.
	LoadBW  int64
	StoreBW int64
	// MemReq: memory instructions / per-cycle request budgets (the
	// tightest of the total, load and store budgets). The budgets are
	// charged per memory instruction, not per line — matching the LSQ,
	// where only byte bandwidth meters a wide vector's individual lines.
	MemReq int64
	// RAMBW: compulsory RAM traffic — distinct lines touched, spaced by
	// the RAM request interval, plus one access latency.
	RAMBW int64
}

// Bounds is the analytical result for one (configuration, stream) pair.
type Bounds struct {
	// Lower is the roofline bound: the maximum of all terms. It is also
	// the model's cycle estimate — the run cannot be faster, and on
	// streams dominated by one resource it is usually close.
	Lower int64
	// Upper is a loose serial-schedule bound: every instruction executes
	// serially and every line request pays the full hierarchy round trip
	// with bandwidth pacing.
	Upper int64
	// Terms holds the individual lower-bound terms.
	Terms BoundTerms
	// FootprintBytes is the distinct-line footprint at the configured
	// line width.
	FootprintBytes int64
}

// NumBoundFeatures is the length of the residual-feature vector
// AppendFeatures emits.
const NumBoundFeatures = 14

// fetchRedirectPenalty is the serial-schedule charge per taken branch in
// the upper bound (fetch redirect plus refill slack).
const fetchRedirectPenalty = 8

// upperSlack absorbs fixed costs of the serial schedule (pipeline fill and
// drain) in the upper bound.
const upperSlack = 64

// portClass is one set of execution groups accepted by an identical set of
// ports; work confined to nPorts ports bounds cycles from below.
type portClass struct {
	groups isa.GroupSet
	nPorts int64
}

// BoundModel evaluates analytical cycle bounds for one configuration
// against any number of streams' statistics.
type BoundModel struct {
	cfg      Config
	mem      MemProfile
	widthIdx int
	classes  []portClass
}

// NewBoundModel builds a bound model for the configuration. The stream
// statistics passed to Bounds must come from the stream the configuration
// would run, i.e. the one at cfg.VectorLength.
func NewBoundModel(cfg Config, mem MemProfile) (*BoundModel, error) {
	k := isa.LineWidthIndex(mem.LineBytes)
	if k < 0 {
		return nil, fmt.Errorf("simeng: bound model line width %d outside the design space", mem.LineBytes)
	}
	if mem.L1Latency < 1 || mem.L2Latency < 1 || mem.RAMLatency < 1 || mem.RAMInterval < 0 {
		return nil, fmt.Errorf("simeng: bound model memory profile %+v has non-positive latency", mem)
	}
	m := &BoundModel{cfg: cfg, mem: mem, widthIdx: k}

	// Partition groups into classes by accepting-port set: instructions of
	// a class can execute nowhere else, so class work / class ports is a
	// valid lower bound per class.
	ports := cfg.EffectivePorts()
	byMask := make(map[uint64]int)
	for g := isa.Group(0); g < isa.NumGroups; g++ {
		var mask uint64
		for pi, p := range ports {
			if p.Accept.Has(g) {
				mask |= 1 << uint(pi)
			}
		}
		if mask == 0 {
			continue
		}
		ci, ok := byMask[mask]
		if !ok {
			ci = len(m.classes)
			byMask[mask] = ci
			m.classes = append(m.classes, portClass{nPorts: int64(popcount64(mask))})
		}
		m.classes[ci].groups |= 1 << g
	}
	return m, nil
}

// Config returns the configuration the model was built for.
func (m *BoundModel) Config() Config { return m.cfg }

// Mem returns the memory profile the model was built for.
func (m *BoundModel) Mem() MemProfile { return m.mem }

// Bounds computes the cycle bounds for one stream's statistics.
func (m *BoundModel) Bounds(st isa.StreamStats) Bounds {
	c := &m.cfg
	k := m.widthIdx
	var t BoundTerms

	t.Retire = ceilDiv(st.Insts, int64(c.CommitWidth))
	t.Frontend = ceilDiv(st.Insts, int64(c.FrontendWidth))
	t.Dispatch = ceilDiv(st.Insts, int64(isa.DispatchRate))

	for _, cl := range m.classes {
		var work int64
		for g := isa.Group(0); g < isa.NumGroups; g++ {
			if !cl.groups.Has(g) || st.Groups[g] == 0 {
				continue
			}
			occ := int64(1)
			if !g.Pipelined() {
				occ = int64(g.Latency())
			}
			work += st.Groups[g] * occ
		}
		if b := ceilDiv(work, cl.nPorts); b > t.Port {
			t.Port = b
		}
	}

	memInsts := st.Groups[isa.Load] + st.Groups[isa.Store]
	t.LSQ = ceilDiv(memInsts, int64(c.LSQCompletionWidth))
	t.LoadBW = ceilDiv(st.LoadBytes, int64(c.LoadBandwidth))
	t.StoreBW = ceilDiv(st.StoreBytes, int64(c.StoreBandwidth))

	t.MemReq = ceilDiv(memInsts, int64(c.MemRequestsPerCycle))
	if b := ceilDiv(st.Groups[isa.Load], int64(c.MemLoadsPerCycle)); b > t.MemReq {
		t.MemReq = b
	}
	if b := ceilDiv(st.Groups[isa.Store], int64(c.MemStoresPerCycle)); b > t.MemReq {
		t.MemReq = b
	}

	if n := st.UniqueLines[k]; n > 0 {
		// Every distinct line is a compulsory miss fetched over the paced
		// RAM channel at least once, and the last must still complete. The
		// hierarchy re-bases its pacing clock on the integer request-start
		// cycle, so back-to-back requests are spaced floor(RAMInterval)
		// cycles apart — the bound must use the floored spacing or it
		// overshoots real runs whenever the interval is fractional.
		t.RAMBW = (n-1)*int64(m.mem.RAMInterval) + m.mem.RAMLatency
	}

	lower := t.Retire
	for _, b := range []int64{t.Frontend, t.Dispatch, t.Port, t.LSQ, t.LoadBW, t.StoreBW, t.MemReq, t.RAMBW} {
		if b > lower {
			lower = b
		}
	}

	// Serial schedule: each instruction pays its execution latency with no
	// overlap plus one pipeline slot; each taken branch a fetch redirect;
	// each line request a full L1+L2+RAM round trip plus two bandwidth
	// slots (demand plus worst-case prefetch/writeback companion traffic).
	var serial int64
	for g := isa.Group(0); g < isa.NumGroups; g++ {
		if st.Groups[g] != 0 {
			serial += st.Groups[g] * int64(g.Latency())
		}
	}
	serial += st.Insts
	serial += st.TakenBranches * fetchRedirectPenalty
	perReq := m.mem.L1Latency + m.mem.L2Latency + m.mem.RAMLatency
	serial += st.LineRequests[k] * perReq
	serial += int64(math.Ceil(float64(2*st.LineRequests[k]) * m.mem.RAMInterval))
	serial += upperSlack
	if serial < lower {
		serial = lower
	}

	return Bounds{
		Lower:          lower,
		Upper:          serial,
		Terms:          t,
		FootprintBytes: st.FootprintBytes(m.mem.LineBytes),
	}
}

// AppendFeatures appends the residual-model feature vector derived from b:
// bound magnitudes on a log scale, per-term dominance ratios, and
// cache-residency ratios. Exactly NumBoundFeatures values are appended.
func (m *BoundModel) AppendFeatures(dst []float64, b Bounds) []float64 {
	lower := float64(b.Lower)
	if lower < 1 {
		lower = 1
	}
	upper := float64(b.Upper)
	if upper < lower {
		upper = lower
	}
	ratio := func(v int64) float64 { return float64(v) / lower }
	dst = append(dst,
		math.Log(lower),
		math.Log(upper/lower),
		ratio(b.Terms.Retire),
		ratio(b.Terms.Frontend),
		ratio(b.Terms.Dispatch),
		ratio(b.Terms.Port),
		ratio(b.Terms.LSQ),
		ratio(b.Terms.LoadBW),
		ratio(b.Terms.StoreBW),
		ratio(b.Terms.MemReq),
		ratio(b.Terms.RAMBW),
		float64(b.FootprintBytes)/float64(m.mem.L1Bytes),
		float64(b.FootprintBytes)/float64(m.mem.L2Bytes),
		math.Log(float64(m.mem.RAMLatency)+m.mem.RAMInterval),
	)
	return dst
}

// PredictedStats synthesises a Stats record for a predicted (not simulated)
// run of cycles total cycles: the architectural counts come exactly from
// the stream statistics, and the stall breakdown is a deterministic
// two-class attribution — retire-bound cycles are Busy and the remainder is
// charged to the class of the dominant non-retire bound term — preserving
// the taxonomy invariant that the breakdown sums exactly to Cycles.
func (m *BoundModel) PredictedStats(st isa.StreamStats, b Bounds, cycles int64) Stats {
	if cycles < 1 {
		cycles = 1
	}
	s := Stats{
		Cycles:      cycles,
		Retired:     st.Insts,
		SVERetired:  st.SVE,
		Loads:       st.Groups[isa.Load],
		Stores:      st.Groups[isa.Store],
		Branches:    st.Groups[isa.Branch],
		Fetched:     st.Insts,
		MemRequests: st.LineRequests[m.widthIdx],
	}
	busy := b.Terms.Retire
	if busy > cycles {
		busy = cycles
	}
	s.Stalls[StallBusy] = busy
	if rest := cycles - busy; rest > 0 {
		s.Stalls[m.dominantStallClass(b)] += rest
	}
	return s
}

// dominantStallClass maps the largest non-retire bound term to the stall
// class exact simulation would most plausibly charge.
func (m *BoundModel) dominantStallClass(b Bounds) StallClass {
	t := &b.Terms
	best, class := int64(-1), StallExec
	for _, c := range []struct {
		v  int64
		sc StallClass
	}{
		{t.Frontend, StallFrontend},
		{t.Dispatch, StallFrontend},
		{t.Port, StallPortConflict},
		{t.LSQ, StallMemBandwidth},
		{t.LoadBW, StallMemBandwidth},
		{t.StoreBW, StallMemBandwidth},
		{t.MemReq, StallMemBandwidth},
		{t.RAMBW, StallMemLatency},
	} {
		if c.v > best {
			best, class = c.v, c.sc
		}
	}
	return class
}

// ceilDiv returns ceil(a/b) for non-negative a and positive b; zero when b
// is not positive (a disabled resource imposes no bound).
func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// popcount64 counts set bits.
func popcount64(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
