package simeng

// lsqUnit is the load/store queue stage component. It owns the in-flight
// load request queue, the post-commit store drain queue, the load completion
// heap and the per-cycle byte-bandwidth credits; the backend seam
// (MemoryBackend.Access) is crossed only from this unit.
type lsqUnit struct {
	loadReqQ    ring[loadReq]
	storeWriteQ ring[storeWrite]
	loadHeap    seqHeap

	lqCount, sqCount int

	// Byte-bandwidth credits persist across cycles (capped at one cycle's
	// allowance) so accesses wider than the per-cycle bandwidth drain
	// over multiple cycles instead of wedging.
	loadCredit   int64
	storeCredit  int64
	lastMemCycle int64
}

// loadReq is a load whose address generation completes at availableAt.
type loadReq struct {
	seq         int64
	availableAt int64
}

// storeWrite is a committed store draining to memory.
type storeWrite struct {
	nextLine  uint64
	startAddr uint64
	endAddr   uint64
}

// reset re-initialises the unit for a new run, reusing the queue buffers
// and the load-completion heap.
func (u *lsqUnit) reset(cfg Config) {
	u.loadReqQ.reset(cfg.LoadQueueSize)
	u.storeWriteQ.reset(cfg.StoreQueueSize)
	u.loadHeap.reset()
	u.lqCount, u.sqCount = 0, 0
	u.loadCredit, u.storeCredit = 0, 0
	u.lastMemCycle = 0
}

// memoryStage writes back returned load data, splits pending loads and
// committed stores into line requests against the backend under the
// per-cycle request/kind/byte budgets, and posts budget exhaustion to the
// stall bus (mem-bw).
func (c *Core) memoryStage() {
	completions := c.cfg.LSQCompletionWidth
	requests := c.cfg.MemRequestsPerCycle
	loadOps := c.cfg.MemLoadsPerCycle
	storeOps := c.cfg.MemStoresPerCycle

	// Replenish bandwidth credits for the cycles elapsed since the last
	// visit, capped at one cycle's allowance.
	delta := c.cycle - c.lsq.lastMemCycle
	if delta < 1 {
		delta = 1
	}
	c.lsq.lastMemCycle = c.cycle
	c.lsq.loadCredit += delta * int64(c.cfg.LoadBandwidth)
	if c.lsq.loadCredit > int64(c.cfg.LoadBandwidth) {
		c.lsq.loadCredit = int64(c.cfg.LoadBandwidth)
	}
	c.lsq.storeCredit += delta * int64(c.cfg.StoreBandwidth)
	if c.lsq.storeCredit > int64(c.cfg.StoreBandwidth) {
		c.lsq.storeCredit = int64(c.cfg.StoreBandwidth)
	}

	// Load writebacks: data that has returned claims LSQ completion slots.
	for completions > 0 && c.lsq.loadHeap.Len() > 0 && c.lsq.loadHeap.Min().at <= c.cycle {
		ev := c.lsq.loadHeap.Pop()
		e := &c.window[ev.seq&c.wmask]
		e.resultAt = c.cycle
		e.state = stExec
		c.resolveWaiters(e, c.cycle)
		completions--
		c.progress = true
	}

	// Load line requests: head-of-queue loads split into per-line requests
	// under the request/kind/byte budgets.
	for !c.lsq.loadReqQ.Empty() {
		lr := c.lsq.loadReqQ.Peek()
		if lr.availableAt > c.cycle {
			break
		}
		e := &c.window[lr.seq&c.wmask]
		blocked := false
		for e.nextLine < e.endAddr {
			lineStart := e.nextLine &^ (c.lineBytes - 1)
			portion := int64(min(e.endAddr, lineStart+c.lineBytes) - e.nextLine)
			// The per-cycle request/load limits are per memory
			// *instruction* (the paper's SST backend fetches a wide
			// vector's lines from parallel banks); only the byte
			// bandwidth meters the individual lines.
			if e.nextLine == e.addr && (requests < 1 || loadOps < 1) {
				blocked = true
				break
			}
			if c.lsq.loadCredit < 1 {
				blocked = true
				break
			}
			if e.nextLine == e.addr {
				requests--
				loadOps--
			}
			done := c.mem.Access(c.cycle, e.nextLine, false)
			if done > e.memDone {
				e.memDone = done
			}
			c.lsq.loadCredit -= portion
			c.stats.MemRequests++
			e.nextLine = lineStart + c.lineBytes
			c.progress = true
		}
		if blocked {
			// Budget-blocked with work pending: the budgets refresh next
			// cycle, so the idle skipper must not jump past it.
			c.bus.memBWBlocked = true
			c.postEvent(c.cycle + 1)
			break
		}
		// memDone is not posted to the events heap: the idle skipper
		// consults loadHeap.Min directly, so the wake-up is already
		// represented without the duplicate heap traffic.
		e.state = stLoadMem
		c.lsq.loadHeap.Push(seqEvent{at: e.memDone, seq: lr.seq})
		c.lsq.loadReqQ.Drop()
		c.progress = true
	}

	// Committed store writes drain through the remaining budgets; each
	// fully-issued store claims one LSQ completion slot and frees its SQ
	// entry.
	for completions > 0 && !c.lsq.storeWriteQ.Empty() {
		sw := c.lsq.storeWriteQ.Peek()
		blocked := false
		for sw.nextLine < sw.endAddr {
			lineStart := sw.nextLine &^ (c.lineBytes - 1)
			portion := int64(min(sw.endAddr, lineStart+c.lineBytes) - sw.nextLine)
			if sw.nextLine == sw.startAddr && (requests < 1 || storeOps < 1) {
				blocked = true
				break
			}
			if c.lsq.storeCredit < 1 {
				blocked = true
				break
			}
			if sw.nextLine == sw.startAddr {
				requests--
				storeOps--
			}
			c.mem.Access(c.cycle, sw.nextLine, true)
			c.lsq.storeCredit -= portion
			c.stats.MemRequests++
			sw.nextLine = lineStart + c.lineBytes
			c.progress = true
		}
		if blocked {
			c.bus.memBWBlocked = true
			c.postEvent(c.cycle + 1)
			break
		}
		c.lsq.storeWriteQ.Drop()
		c.lsq.sqCount--
		completions--
		c.progress = true
	}
}
