package simeng

import "fmt"

// FlatMem is the simplest MemoryBackend: every line request completes after
// a fixed latency, with an optional per-cycle line-throughput cap. It models
// an ideal (perfect-cache) memory system, which makes it the reference
// backend for isolating core-bound behaviour — any stall the core shows on
// FlatMem is the core's own (rename, ROB, ports), not the hierarchy's — and
// the fast default for tests that do not care about cache behaviour.
type FlatMem struct {
	latency   int64
	lineBytes int
	// linesPerCycle caps lines accepted per cycle; 0 is uncapped. Excess
	// lines in one cycle complete one extra cycle later per full group,
	// mimicking a request queue draining at the cap.
	linesPerCycle int

	cycle  int64
	issued int
	stats  MemStats
}

// NewFlatMem builds a flat backend with the given fixed latency in core
// cycles and line size in bytes. linesPerCycle caps line throughput per
// cycle (0 = unlimited).
func NewFlatMem(latency int64, lineBytes, linesPerCycle int) (*FlatMem, error) {
	m := &FlatMem{}
	if err := m.Reset(latency, lineBytes, linesPerCycle); err != nil {
		return nil, err
	}
	return m, nil
}

// Reset reconfigures the backend in place for a new run, exactly as if it
// had been built with NewFlatMem (same validation), so a pooled FlatMem can
// be reused across runs.
func (m *FlatMem) Reset(latency int64, lineBytes, linesPerCycle int) error {
	if latency < 1 {
		return fmt.Errorf("simeng: flat memory latency %d < 1", latency)
	}
	if lineBytes < 4 || lineBytes&(lineBytes-1) != 0 {
		return fmt.Errorf("simeng: flat memory line size %d not a power of two >= 4", lineBytes)
	}
	if linesPerCycle < 0 {
		return fmt.Errorf("simeng: flat memory lines/cycle %d < 0", linesPerCycle)
	}
	m.latency = latency
	m.lineBytes = lineBytes
	m.linesPerCycle = linesPerCycle
	m.cycle = 0
	m.issued = 0
	m.stats = MemStats{}
	return nil
}

// Tick implements MemoryBackend: a new cycle resets the per-cycle issue
// counter.
func (m *FlatMem) Tick(now int64) {
	if now != m.cycle {
		m.cycle, m.issued = now, 0
	}
}

// Access implements MemoryBackend. Every access counts as an L1 hit — the
// flat model is an always-hitting cache.
func (m *FlatMem) Access(now int64, addr uint64, store bool) int64 {
	m.stats.Accesses++
	m.stats.L1Hits++
	var queued int64
	if m.linesPerCycle > 0 {
		m.Tick(now) // in case the core skipped ahead within one step
		queued = int64(m.issued / m.linesPerCycle)
		m.issued++
	}
	return now + m.latency + queued
}

// LineBytes implements MemoryBackend.
func (m *FlatMem) LineBytes() int { return m.lineBytes }

// Stats implements MemoryBackend.
func (m *FlatMem) Stats() MemStats { return m.stats }
