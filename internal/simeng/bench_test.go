package simeng

import (
	"testing"

	"armdse/internal/isa"
	"armdse/internal/sstmem"
)

// BenchmarkCoreALUThroughput measures the engine on pure in-cache ALU work.
func BenchmarkCoreALUThroughput(b *testing.B) {
	insts := tightLoop(14, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	var retired int64
	for i := 0; i < b.N; i++ {
		h, err := sstmem.New(testMemCfg())
		if err != nil {
			b.Fatal(err)
		}
		c, err := New(bigCfg(), h)
		if err != nil {
			b.Fatal(err)
		}
		st, err := c.Run(isa.NewSliceStream(insts))
		if err != nil {
			b.Fatal(err)
		}
		retired += st.Retired
	}
	b.ReportMetric(float64(retired)/b.Elapsed().Seconds()/1e6, "MIPS")
}

// BenchmarkCorePooledALUThroughput is BenchmarkCoreALUThroughput on a pooled
// core and hierarchy, Reset in place between runs — the collection engine's
// steady state. allocs/op is the interesting number: it should be ~0 once
// the pooled structures reach their high-water marks, against the hundreds
// of allocations the fresh-construction benchmark pays per run.
func BenchmarkCorePooledALUThroughput(b *testing.B) {
	insts := tightLoop(14, 2000)
	h, err := sstmem.New(testMemCfg())
	if err != nil {
		b.Fatal(err)
	}
	c, err := New(bigCfg(), h)
	if err != nil {
		b.Fatal(err)
	}
	var stream isa.SliceStream
	b.ReportAllocs()
	b.ResetTimer()
	var retired int64
	for i := 0; i < b.N; i++ {
		if err := h.Reset(testMemCfg()); err != nil {
			b.Fatal(err)
		}
		if err := c.Reset(bigCfg(), h); err != nil {
			b.Fatal(err)
		}
		stream.ResetTo(insts)
		st, err := c.Run(&stream)
		if err != nil {
			b.Fatal(err)
		}
		retired += st.Retired
	}
	b.ReportMetric(float64(retired)/b.Elapsed().Seconds()/1e6, "MIPS")
}

// BenchmarkCoreMemoryBound measures the engine on a cold streaming pattern
// where the idle-cycle skipper matters.
func BenchmarkCoreMemoryBound(b *testing.B) {
	var insts []isa.Inst
	for i := 0; i < 2000; i++ {
		insts = append(insts, loadAt(1+i%16, uint64(1<<20)+uint64(i)*64, 64))
	}
	seqPCs(0x1000, insts)
	b.ReportAllocs()
	b.ResetTimer()
	var retired int64
	for i := 0; i < b.N; i++ {
		h, err := sstmem.New(testMemCfg())
		if err != nil {
			b.Fatal(err)
		}
		c, err := New(bigCfg(), h)
		if err != nil {
			b.Fatal(err)
		}
		st, err := c.Run(isa.NewSliceStream(insts))
		if err != nil {
			b.Fatal(err)
		}
		retired += st.Retired
	}
	b.ReportMetric(float64(retired)/b.Elapsed().Seconds()/1e6, "MIPS")
}
