package simeng_test

// Golden-determinism harness. The cycle totals in testdata/golden_cycles.json
// were pinned against the pre-refactor monolithic core (one file, hard-wired
// *sstmem.Hierarchy); any structural refactor of the stage pipeline or the
// memory-backend seam must keep every (config, workload) total byte-identical.
// Regenerate deliberately with:
//
//	go test ./internal/simeng -run TestGoldenCycles -update-golden
//
// and treat any diff in the regenerated file as a behaviour change that needs
// justifying, not as noise.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"armdse/internal/params"
	"armdse/internal/simeng"
	"armdse/internal/sstmem"
	"armdse/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_cycles.json from the current simulator")

// goldenSeed derives the sampled design-space points of the golden matrix.
const goldenSeed = 20240805

// goldenConfigs is the fixed configuration matrix: the ThunderX2 baseline
// plus sampled design-space points covering both fidelity-relevant extremes
// (the sampler varies all 30 parameters, so cache sizes, bandwidths and
// vector lengths all move).
func goldenConfigs() map[string]params.Config {
	m := map[string]params.Config{"tx2": params.ThunderX2()}
	for i := 0; i < 5; i++ {
		m[fmt.Sprintf("s%d", i)] = params.ConfigAt(goldenSeed, i)
	}
	return m
}

// goldenOutcome is one pinned run result.
type goldenOutcome struct {
	Cycles  int64 `json:"cycles"`
	Retired int64 `json:"retired"`
}

const goldenPath = "testdata/golden_cycles.json"

// goldenRun simulates one (config, workload) pair exactly as the collection
// pipeline does: a fresh core and hierarchy per run.
func goldenRun(t *testing.T, cfg params.Config, w workload.Workload) goldenOutcome {
	t.Helper()
	prog, err := w.Program(cfg.Core.VectorLength)
	if err != nil {
		t.Fatalf("%s: building program: %v", w.Name(), err)
	}
	h, err := sstmem.New(cfg.Mem)
	if err != nil {
		t.Fatalf("building hierarchy: %v", err)
	}
	c, err := simeng.New(cfg.Core, h)
	if err != nil {
		t.Fatalf("building core: %v", err)
	}
	st, err := c.Run(prog.Stream())
	if err != nil {
		t.Fatalf("%s: run: %v", w.Name(), err)
	}
	return goldenOutcome{Cycles: st.Cycles, Retired: st.Retired}
}

func TestGoldenCycles(t *testing.T) {
	if testing.Short() {
		t.Skip("golden matrix simulates the full test suite on six configs")
	}
	got := make(map[string]goldenOutcome)
	for name, cfg := range goldenConfigs() {
		for _, w := range workload.TestSuite() {
			got[name+"/"+w.Name()] = goldenRun(t, cfg, w)
		}
	}

	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s with %d entries", goldenPath, len(got))
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (run with -update-golden to create): %v", err)
	}
	var want map[string]goldenOutcome
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d entries, matrix has %d", len(want), len(got))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: in golden file but not in matrix", key)
			continue
		}
		if g != w {
			t.Errorf("%s: cycles/retired = %d/%d, golden %d/%d", key, g.Cycles, g.Retired, w.Cycles, w.Retired)
		}
	}
}
