package simeng

import "armdse/internal/isa"

// fetchUnit is the front-end stage component: the stream lookahead and the
// loop-buffer lock state.
type fetchUnit struct {
	stream     isa.Stream
	peek       isa.Inst
	havePeek   bool
	streamDone bool
	lbActive   bool
	lbBranchPC uint64
	lbSeen     int
}

// ensurePeek keeps a one-instruction lookahead over the stream.
func (u *fetchUnit) ensurePeek() bool {
	if u.havePeek {
		return true
	}
	if u.streamDone {
		return false
	}
	if !u.stream.Next(&u.peek) {
		u.streamDone = true
		return false
	}
	u.havePeek = true
	return true
}

// fetchStage supplies up to FrontendWidth instructions per cycle, bounded by
// fetch-block alignment and taken-branch redirects, with small loops locked
// into the loop buffer (which lifts both limits).
func (c *Core) fetchStage() {
	u := &c.fetch
	fbs := uint64(c.cfg.FetchBlockSize)
	var blockEnd uint64
	blockSet := false
	for n := 0; n < c.cfg.FrontendWidth && !c.fetchQ.Full(); n++ {
		if !u.ensurePeek() {
			return
		}
		pc := u.peek.PC
		if !u.lbActive {
			if !blockSet {
				blockEnd = (pc &^ (fbs - 1)) + fbs
				blockSet = true
			}
			if pc >= blockEnd || pc < blockEnd-fbs {
				// Next instruction lies in another fetch block.
				return
			}
		}
		inst := u.peek
		u.havePeek = false
		c.fetchQ.Push(inst)
		c.stats.Fetched++
		if u.lbActive {
			c.stats.LoopBufferFetched++
		}
		c.progress = true
		if inst.Op != isa.Branch {
			continue
		}
		if inst.Branch.Taken {
			span := 0
			if inst.Branch.LoopBack && inst.PC >= inst.Branch.Target {
				span = int((inst.PC-inst.Branch.Target)/isa.InstBytes) + 1
			}
			if inst.Branch.LoopBack && span > 0 && span <= c.cfg.LoopBufferSize {
				if inst.PC == u.lbBranchPC {
					u.lbSeen++
					if u.lbSeen >= 2 {
						// The whole loop body has streamed through
						// twice: lock it into the loop buffer.
						u.lbActive = true
					}
				} else {
					u.lbBranchPC = inst.PC
					u.lbSeen = 1
					u.lbActive = false
				}
			} else {
				u.lbActive = false
				u.lbBranchPC = 0
				u.lbSeen = 0
			}
			if !u.lbActive {
				// Taken-branch redirect ends this cycle's fetch group.
				return
			}
		} else if inst.Branch.LoopBack && inst.PC == u.lbBranchPC {
			// Loop exit: release the loop buffer.
			u.lbActive = false
			u.lbBranchPC = 0
			u.lbSeen = 0
		}
	}
}
