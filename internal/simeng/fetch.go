package simeng

import "armdse/internal/isa"

// refStream is an optional Stream extension yielding instructions by
// read-only reference instead of by copy; isa.SliceStream implements it.
// When the run's stream provides it, the front end reads instructions
// directly from the stream's backing storage, skipping the per-instruction
// struct copy into the peek buffer.
type refStream interface {
	NextRef() *isa.Inst
}

// fetchUnit is the front-end stage component: the stream lookahead and the
// loop-buffer lock state. peekRef points at the current lookahead
// instruction — into the stream's storage on the refStream path, into
// lazyBuf otherwise.
//
// The fetch queue holds pointers, not values: on the refStream path they
// point straight into the (shared, read-only) arena, and on the lazy path
// into lazyBuf, a private ring of fetchQCap+1 slots the stream decodes
// directly into. A slot is reused only after fetchQCap+1 further pushes, by
// which point the queue (capacity fetchQCap) must have dropped it — so every
// pointer stays valid from peek through rename.
type fetchUnit struct {
	stream     isa.Stream
	refs       refStream
	peekRef    *isa.Inst
	lazyBuf    []isa.Inst
	lazyIdx    int
	havePeek   bool
	streamDone bool
	lbActive   bool
	lbBranchPC uint64
	lbSeen     int
}

// reset re-initialises the unit for a new run, retaining lazyBuf.
func (u *fetchUnit) reset() {
	buf := u.lazyBuf
	*u = fetchUnit{}
	u.lazyBuf = buf
}

// ensurePeek keeps a one-instruction lookahead over the stream.
func (u *fetchUnit) ensurePeek() bool {
	if u.havePeek {
		return true
	}
	if u.streamDone {
		return false
	}
	if u.refs != nil {
		p := u.refs.NextRef()
		if p == nil {
			u.streamDone = true
			return false
		}
		u.peekRef = p
		u.havePeek = true
		return true
	}
	if u.lazyBuf == nil {
		u.lazyBuf = make([]isa.Inst, fetchQCap+1)
	}
	slot := &u.lazyBuf[u.lazyIdx]
	if !u.stream.Next(slot) {
		u.streamDone = true
		return false
	}
	u.peekRef = slot
	u.havePeek = true
	return true
}

// fetchStage supplies up to FrontendWidth instructions per cycle, bounded by
// fetch-block alignment and taken-branch redirects, with small loops locked
// into the loop buffer (which lifts both limits).
func (c *Core) fetchStage() {
	u := &c.fetch
	fbs := uint64(c.cfg.FetchBlockSize)
	var blockEnd uint64
	blockSet := false
	for n := 0; n < c.cfg.FrontendWidth && !c.fetchQ.Full(); n++ {
		if !u.ensurePeek() {
			return
		}
		pc := u.peekRef.PC
		if !u.lbActive {
			if !blockSet {
				blockEnd = (pc &^ (fbs - 1)) + fbs
				blockSet = true
			}
			if pc >= blockEnd || pc < blockEnd-fbs {
				// Next instruction lies in another fetch block.
				return
			}
		}
		// inst aliases the lookahead (lazyBuf slot or stream storage); the
		// pointer stays valid through rename — see the fetchUnit comment.
		// Read-only on the refStream path.
		inst := u.peekRef
		u.havePeek = false
		if u.refs == nil {
			// Consumed a lazyBuf slot: advance to the next one.
			u.lazyIdx++
			if u.lazyIdx == len(u.lazyBuf) {
				u.lazyIdx = 0
			}
		}
		c.fetchQ.Push(inst)
		c.stats.Fetched++
		if u.lbActive {
			c.stats.LoopBufferFetched++
		}
		c.progress = true
		if inst.Op != isa.Branch {
			continue
		}
		if inst.Branch.Taken {
			span := 0
			if inst.Branch.LoopBack && inst.PC >= inst.Branch.Target {
				span = int((inst.PC-inst.Branch.Target)/isa.InstBytes) + 1
			}
			if inst.Branch.LoopBack && span > 0 && span <= c.cfg.LoopBufferSize {
				if inst.PC == u.lbBranchPC {
					u.lbSeen++
					if u.lbSeen >= 2 {
						// The whole loop body has streamed through
						// twice: lock it into the loop buffer.
						u.lbActive = true
					}
				} else {
					u.lbBranchPC = inst.PC
					u.lbSeen = 1
					u.lbActive = false
				}
			} else {
				u.lbActive = false
				u.lbBranchPC = 0
				u.lbSeen = 0
			}
			if !u.lbActive {
				// Taken-branch redirect ends this cycle's fetch group.
				return
			}
		} else if inst.Branch.LoopBack && inst.PC == u.lbBranchPC {
			// Loop exit: release the loop buffer.
			u.lbActive = false
			u.lbBranchPC = 0
			u.lbSeen = 0
		}
	}
}
