package simeng

import (
	"fmt"
	"math"

	"armdse/internal/isa"
)

// doneNever marks a result time that is not yet known.
const doneNever = math.MaxInt64

// entryState tracks an in-flight instruction through the back end.
type entryState uint8

const (
	stFree entryState = iota
	// stInRS: dispatched, waiting in the reservation station.
	stInRS
	// stExec: issued; resultAt gives completion (also stores post-AGU and
	// loads post-writeback — an entry with resultAt <= cycle is done).
	stExec
	// stLoadAGU: load issued on a port; line requests pending in loadReqQ.
	stLoadAGU
	// stLoadMem: all line requests issued; waiting for data return.
	stLoadMem
)

// entry is one reorder-buffer slot. The window is indexed by sequence number
// modulo the ROB size; slots recycle at commit.
//
// Readiness uses wakeup lists rather than per-cycle source polling: at
// dispatch each unresolved source links a (consumer, slot) node onto its
// producer's list; when the producer's completion time becomes known it
// walks the list, folding the time into each consumer's earliestReady and
// decrementing pendingSrcs. An entry is issueable when pendingSrcs is zero
// and earliestReady has passed.
type entry struct {
	resultAt int64
	memDone  int64
	nextLine uint64 // next un-requested byte of the access
	endAddr  uint64
	addr     uint64
	// earliestReady is the max known completion time of resolved sources.
	earliestReady int64
	// pc and dispatchedAt feed the optional commit tracer.
	pc           uint64
	dispatchedAt int64
	// wakeHead is the first (consumerSeq*4+slot) node of this entry's
	// consumer wake list, or -1.
	wakeHead int64
	// wakeNext are this entry's own per-source-slot list links.
	wakeNext [4]int64
	op       isa.Group
	sve      bool
	state    entryState
	nd       uint8
	// pendingSrcs counts sources whose producer completion is unknown.
	pendingSrcs uint8
	destClass   [2]uint8
}

// renamed is an instruction between rename and dispatch.
type renamed struct {
	srcSeq    [4]int64
	addr      uint64
	pc        uint64
	bytes     uint32
	op        isa.Group
	sve       bool
	nd, ns    uint8
	destClass [2]uint8
}

// TraceEvent records the lifetime of one retired instruction; events are
// delivered in program order at commit time.
type TraceEvent struct {
	// Seq is the instruction's global sequence number.
	Seq int64
	// PC is the instruction's byte address.
	PC uint64
	// Op is the execution group; SVE marks Z-register instructions.
	Op  isa.Group
	SVE bool
	// Dispatched, Done and Committed are the cycles the instruction
	// entered the window, produced its result, and retired.
	Dispatched int64
	Done       int64
	Committed  int64
}

// Core is one out-of-order core wired to a MemoryBackend. The pipeline is
// split into stage components — fetchUnit, renameUnit, issueUnit, lsqUnit —
// each owning its stage's private state; the shared window, sequence
// counters, event heap and stallBus live on the Core. A Core runs a single
// instruction stream and is then exhausted; build a new Core (and backend)
// per run.
type Core struct {
	cfg       Config
	mem       MemoryBackend
	lineBytes uint64

	window []entry
	cp     int64 // window capacity (== ROBSize)

	seqRenamed    int64
	seqDispatched int64
	seqCommitted  int64

	// fetchQ and renameQ are the inter-stage latches (fetch→rename and
	// rename→dispatch); they stay on the Core because each is shared by
	// its producer and consumer stage.
	fetchQ  ring[isa.Inst]
	renameQ ring[renamed]
	// events is the idle-skip heap: stages post future wake-up cycles so a
	// no-progress cycle can jump straight to the next one with work.
	events int64Heap

	fetch  fetchUnit
	rename renameUnit
	issue  issueUnit
	lsq    lsqUnit
	bus    stallBus

	cycle    int64
	progress bool
	runErr   error
	stats    Stats
	tracer   func(TraceEvent)
}

// SetTracer installs a per-instruction commit callback. Tracing is for
// debugging and the dsetrace tool; it slows simulation and must be set
// before Run.
func (c *Core) SetTracer(fn func(TraceEvent)) { c.tracer = fn }

// New builds a core from cfg attached to the given memory backend.
func New(cfg Config, mem MemoryBackend) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if mem == nil {
		return nil, fmt.Errorf("simeng: nil memory backend")
	}
	lb := mem.LineBytes()
	if lb < 4 || lb&(lb-1) != 0 {
		return nil, fmt.Errorf("simeng: backend line size %d not a power of two >= 4", lb)
	}
	c := &Core{
		cfg:       cfg,
		mem:       mem,
		lineBytes: uint64(lb),
		window:    make([]entry, cfg.ROBSize),
		cp:        int64(cfg.ROBSize),
		fetchQ:    newRing[isa.Inst](192),
		renameQ:   newRing[renamed](16),
	}
	c.lsq.init(cfg)
	c.issue.init(cfg)
	c.rename.init(cfg)
	c.stats.PortIssued = make([]int64, len(c.issue.ports))
	return c, nil
}

// Simulate runs stream on a fresh core attached to mem and returns the run
// statistics. It is the package's primary entry point; callers that want the
// study's SST-like hierarchy build it with sstmem.New and pass it here.
func Simulate(core Config, mem MemoryBackend, stream isa.Stream) (Stats, error) {
	c, err := New(core, mem)
	if err != nil {
		return Stats{}, err
	}
	return c.Run(stream)
}

// DefaultMaxCycles bounds a run against livelock; it is far beyond any
// plausible real execution of the study's workloads.
const DefaultMaxCycles = int64(1) << 40

// Run executes the stream to completion and returns the statistics.
func (c *Core) Run(stream isa.Stream) (Stats, error) {
	return c.RunLimit(stream, DefaultMaxCycles)
}

// RunLimit is Run with an explicit cycle budget.
//
// Each simulated step runs the stages in reverse pipeline order, then
// charges the step's cycles to exactly one StallClass from the stallBus
// reports (idle-skipped cycles all go to the class that blocked the skip),
// so Stats.Stalls sums to Stats.Cycles on every successful run.
func (c *Core) RunLimit(stream isa.Stream, maxCycles int64) (Stats, error) {
	if c.fetch.stream != nil {
		return Stats{}, fmt.Errorf("simeng: core already used; build a new one per run")
	}
	c.fetch.stream = stream
	for {
		c.progress = false
		c.bus.reset()
		c.mem.Tick(c.cycle)
		c.drainStaleEvents()
		c.commitStage()
		c.memoryStage()
		c.issueStage()
		c.dispatchStage()
		c.renameStage()
		c.fetchStage()
		if c.runErr != nil {
			return c.stats, c.runErr
		}
		class := c.classifyCycle()
		if c.finished() {
			// The final cycle is counted in Cycles (== c.cycle+1), so it
			// gets one attribution too.
			c.stats.Stalls[class]++
			break
		}
		occ := c.seqDispatched - c.seqCommitted
		prevCycle := c.cycle
		if c.progress {
			c.cycle++
		} else {
			if c.events.Len() == 0 {
				return c.stats, fmt.Errorf("simeng: deadlock at cycle %d (%d retired, %d in flight)",
					c.cycle, c.stats.Retired, c.seqDispatched-c.seqCommitted)
			}
			next := c.events.Pop()
			if next <= c.cycle {
				// drainStaleEvents should prevent this.
				next = c.cycle + 1
			}
			c.cycle = next
		}
		elapsed := c.cycle - prevCycle
		c.stats.Stalls[class] += elapsed
		c.stats.ROBOccupancy += occ * elapsed
		c.stats.RSOccupancy += int64(c.issue.rsCount) * elapsed
		if c.cycle > maxCycles {
			return c.stats, fmt.Errorf("simeng: exceeded cycle limit %d with %d retired", maxCycles, c.stats.Retired)
		}
	}
	c.stats.Cycles = c.cycle + 1
	c.stats.Mem = c.mem.Stats()
	return c.stats, nil
}

// finished reports whether all work has drained.
func (c *Core) finished() bool {
	return c.fetch.streamDone && !c.fetch.havePeek &&
		c.fetchQ.Empty() && c.renameQ.Empty() &&
		c.seqCommitted == c.seqRenamed &&
		c.lsq.storeWriteQ.Empty()
}

// drainStaleEvents discards event timestamps at or before the current cycle,
// keeping the heap bounded by genuinely future events.
func (c *Core) drainStaleEvents() {
	for c.events.Len() > 0 && c.events.Min() <= c.cycle {
		c.events.Pop()
	}
}

// fail aborts the run with a structural error (generator bug).
func (c *Core) fail(format string, args ...any) {
	if c.runErr == nil {
		c.runErr = fmt.Errorf(format, args...)
	}
}
