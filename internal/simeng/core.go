package simeng

import (
	"errors"
	"fmt"
	"math"

	"armdse/internal/isa"
)

// ErrCycleLimit marks a run aborted by its cycle budget (RunLimit's
// maxCycles, the engine's MaxCyclesPerRun protection). Callers distinguish
// budget hits from structural failures with errors.Is.
var ErrCycleLimit = errors.New("cycle limit exceeded")

// doneNever marks a result time that is not yet known.
const doneNever = math.MaxInt64

// entryState tracks an in-flight instruction through the back end.
type entryState uint8

const (
	stFree entryState = iota
	// stInRS: dispatched, waiting in the reservation station.
	stInRS
	// stExec: issued; resultAt gives completion (also stores post-AGU and
	// loads post-writeback — an entry with resultAt <= cycle is done).
	stExec
	// stLoadAGU: load issued on a port; line requests pending in loadReqQ.
	stLoadAGU
	// stLoadMem: all line requests issued; waiting for data return.
	stLoadMem
)

// entry is one reorder-buffer slot. The window is indexed by sequence number
// modulo the ROB size; slots recycle at commit.
//
// Readiness uses wakeup lists rather than per-cycle source polling: at
// dispatch each unresolved source links a (consumer, slot) node onto its
// producer's list; when the producer's completion time becomes known it
// walks the list, folding the time into each consumer's earliestReady and
// decrementing pendingSrcs. An entry is issueable when pendingSrcs is zero
// and earliestReady has passed.
type entry struct {
	resultAt int64
	memDone  int64
	nextLine uint64 // next un-requested byte of the access
	endAddr  uint64
	addr     uint64
	// earliestReady is the max known completion time of resolved sources.
	earliestReady int64
	// pc, dispatchedAt and issuedAt feed the optional commit tracer;
	// issuedAt is -1 until the instruction wins a port.
	pc           uint64
	dispatchedAt int64
	issuedAt     int64
	// wakeHead is the first (consumerSeq*4+slot) node of this entry's
	// consumer wake list, or -1.
	wakeHead int64
	// wakeNext are this entry's own per-source-slot list links.
	wakeNext [4]int64
	op       isa.Group
	sve      bool
	state    entryState
	nd       uint8
	// pendingSrcs counts sources whose producer completion is unknown.
	pendingSrcs uint8
	destClass   [2]uint8
}

// renamed is an instruction between rename and dispatch.
type renamed struct {
	srcSeq    [4]int64
	addr      uint64
	pc        uint64
	bytes     uint32
	op        isa.Group
	sve       bool
	nd, ns    uint8
	destClass [2]uint8
}

// TraceEvent records the lifetime of one retired instruction; events are
// delivered in program order at commit time.
type TraceEvent struct {
	// Seq is the instruction's global sequence number.
	Seq int64
	// PC is the instruction's byte address.
	PC uint64
	// Op is the execution group; SVE marks Z-register instructions.
	Op  isa.Group
	SVE bool
	// Dispatched, Issued, Done and Committed are the cycles the
	// instruction entered the window, won an execution port, produced its
	// result, and retired. Issued is -1 for instructions that never pass
	// the scheduler (not produced today, but kept defensive).
	Dispatched int64
	Issued     int64
	Done       int64
	Committed  int64
}

// Core is one out-of-order core wired to a MemoryBackend. The pipeline is
// split into stage components — fetchUnit, renameUnit, issueUnit, lsqUnit —
// each owning its stage's private state; the shared window, sequence
// counters, event heap and stallBus live on the Core. A Core runs a single
// instruction stream per lifecycle: after a run (or between runs of a
// sweep) call Reset to rebuild it in place for a new configuration and
// backend — backing storage is retained, so a pooled core reaches a
// steady state with no per-run allocation.
type Core struct {
	cfg       Config
	mem       MemoryBackend
	lineBytes uint64

	// window is the reorder buffer slot storage, sized to the power-of-two
	// ceiling of ROBSize so slot lookup is seq&wmask instead of a 64-bit
	// modulo (the single hottest index computation in the engine). Logical
	// capacity checks still use cp; the extra slots merely spread live
	// entries over a wider ring and are never occupied simultaneously.
	window []entry
	cp     int64 // logical window capacity (== ROBSize)
	wmask  int64 // len(window)-1

	seqRenamed    int64
	seqDispatched int64
	seqCommitted  int64

	// fetchQ and renameQ are the inter-stage latches (fetch→rename and
	// rename→dispatch); they stay on the Core because each is shared by
	// its producer and consumer stage. fetchQ carries pointers into the
	// stream arena or the fetch unit's lazyBuf (see fetchUnit) so fetched
	// instructions are never copied per stage.
	fetchQ  ring[*isa.Inst]
	renameQ ring[renamed]
	// events is the idle-skip heap: stages post future wake-up cycles so a
	// no-progress cycle can jump straight to the next one with work.
	events int64Heap
	// evCache deduplicates event postings: stages repost the same wake-up
	// cycle many times within one step (every issued µop posts cycle+1),
	// and duplicates are idempotent — the skipper pops the earliest and
	// drains the rest as stale — so identical (cycle, at) postings are
	// dropped before they reach the heap. Two MRU slots cover the common
	// interleaving of "next cycle" and "data return" postings.
	evCache [2]evStamp

	fetch  fetchUnit
	rename renameUnit
	issue  issueUnit
	lsq    lsqUnit
	bus    stallBus

	cycle       int64
	progress    bool
	runErr      error
	stats       Stats
	tracer      func(TraceEvent)
	stallTracer func(class StallClass, fromCycle, cycles int64)
}

// evStamp is one event-dedup cache slot: a posted wake-up cycle and the
// step it was posted in.
type evStamp struct {
	at   int64
	step int64
}

// postEvent schedules a wake-up on the idle-skip heap, dropping postings
// that duplicate one already made this step. at must be > c.cycle >= 0, so
// the zero-valued cache never spuriously matches.
func (c *Core) postEvent(at int64) {
	if (c.evCache[0].at == at && c.evCache[0].step == c.cycle) ||
		(c.evCache[1].at == at && c.evCache[1].step == c.cycle) {
		return
	}
	c.evCache[1] = c.evCache[0]
	c.evCache[0] = evStamp{at: at, step: c.cycle}
	c.events.Push(at)
}

// SetTracer installs a per-instruction commit callback. Tracing is for
// debugging and the dsetrace tool; it slows simulation and must be set
// before Run.
func (c *Core) SetTracer(fn func(TraceEvent)) { c.tracer = fn }

// SetStallTracer installs a per-step stall-attribution callback: after each
// simulated step the engine reports the StallClass charged for the cycles
// [fromCycle, fromCycle+cycles). Intervals arrive in cycle order and tile the
// run exactly (their cycle counts sum to Stats.Cycles), so a consumer can
// coalesce adjacent same-class intervals into timeline tracks. Like SetTracer
// it slows simulation, must be set before Run, and is cleared by Reset.
func (c *Core) SetStallTracer(fn func(class StallClass, fromCycle, cycles int64)) {
	c.stallTracer = fn
}

// fetchQCap and renameQCap are the inter-stage latch capacities.
const (
	fetchQCap  = 192
	renameQCap = 16
)

// New builds a core from cfg attached to the given memory backend.
func New(cfg Config, mem MemoryBackend) (*Core, error) {
	c := &Core{}
	if err := c.Reset(cfg, mem); err != nil {
		return nil, err
	}
	return c, nil
}

// Reset rebuilds the core in place for a new run on cfg and mem, exactly as
// if it had been built with New — but retaining every backing array (window
// slots, queue buffers, heaps, per-port and per-class tables) so a pooled
// core allocates nothing at steady state. Reset clears any installed
// tracers; call SetTracer/SetStallTracer again after Reset if tracing is
// wanted.
//
// The contract, pinned by the pooled-vs-fresh differential tests: a Run
// after Reset is byte-identical to the same Run on a freshly constructed
// core, whatever ran on the core before — including failed, truncated, or
// larger-configuration runs.
func (c *Core) Reset(cfg Config, mem MemoryBackend) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if mem == nil {
		return fmt.Errorf("simeng: nil memory backend")
	}
	lb := mem.LineBytes()
	if lb < 4 || lb&(lb-1) != 0 {
		return fmt.Errorf("simeng: backend line size %d not a power of two >= 4", lb)
	}
	c.cfg = cfg
	c.mem = mem
	c.lineBytes = uint64(lb)
	c.cp = int64(cfg.ROBSize)
	n := nextPow2(cfg.ROBSize)
	c.wmask = int64(n - 1)
	// The window is deliberately NOT cleared on reuse: no entry field is
	// read before dispatchStage has stored every one of them, so stale
	// slots from a previous run are unobservable (the pooled-vs-fresh
	// differential tests exercise exactly this).
	if cap(c.window) >= n {
		c.window = c.window[:n]
	} else {
		c.window = make([]entry, n)
	}
	c.seqRenamed, c.seqDispatched, c.seqCommitted = 0, 0, 0
	c.fetchQ.reset(fetchQCap)
	c.renameQ.reset(renameQCap)
	c.events.reset()
	c.evCache = [2]evStamp{}
	c.fetch.reset()
	c.rename.reset(cfg)
	c.issue.reset(cfg)
	c.lsq.reset(cfg)
	c.bus.reset()
	c.cycle = 0
	c.progress = false
	c.runErr = nil
	c.resetStats()
	c.tracer = nil
	c.stallTracer = nil
	return nil
}

// resetStats zeroes the run statistics, reusing the per-port slice.
func (c *Core) resetStats() {
	pi := c.stats.PortIssued
	c.stats = Stats{}
	n := len(c.issue.ports)
	if cap(pi) >= n {
		pi = pi[:n]
		clear(pi)
	} else {
		pi = make([]int64, n)
	}
	c.stats.PortIssued = pi
}

// Simulate runs stream on a fresh core attached to mem and returns the run
// statistics. It is the package's primary entry point; callers that want the
// study's SST-like hierarchy build it with sstmem.New and pass it here.
func Simulate(core Config, mem MemoryBackend, stream isa.Stream) (Stats, error) {
	c, err := New(core, mem)
	if err != nil {
		return Stats{}, err
	}
	return c.Run(stream)
}

// DefaultMaxCycles bounds a run against livelock; it is far beyond any
// plausible real execution of the study's workloads.
const DefaultMaxCycles = int64(1) << 40

// Run executes the stream to completion and returns the statistics.
func (c *Core) Run(stream isa.Stream) (Stats, error) {
	return c.RunLimit(stream, DefaultMaxCycles)
}

// RunLimit is Run with an explicit cycle budget.
//
// Each simulated step runs the stages in reverse pipeline order, then
// charges the step's cycles to exactly one StallClass from the stallBus
// reports (idle-skipped cycles all go to the class that blocked the skip),
// so Stats.Stalls sums to Stats.Cycles on every successful run.
func (c *Core) RunLimit(stream isa.Stream, maxCycles int64) (Stats, error) {
	if c.fetch.stream != nil {
		return Stats{}, fmt.Errorf("simeng: core already used; Reset it (or build a new one) per run")
	}
	c.fetch.stream = stream
	if rs, ok := stream.(refStream); ok {
		c.fetch.refs = rs
	}
	for {
		c.progress = false
		c.bus.reset()
		c.mem.Tick(c.cycle)
		c.drainStaleEvents()
		c.commitStage()
		c.memoryStage()
		c.issueStage()
		c.dispatchStage()
		c.renameStage()
		c.fetchStage()
		if c.runErr != nil {
			return c.stats, c.runErr
		}
		class := c.classifyCycle()
		if c.finished() {
			// The final cycle is counted in Cycles (== c.cycle+1), so it
			// gets one attribution too.
			c.stats.Stalls[class]++
			if c.stallTracer != nil {
				c.stallTracer(class, c.cycle, 1)
			}
			break
		}
		occ := c.seqDispatched - c.seqCommitted
		prevCycle := c.cycle
		if c.progress {
			c.cycle++
		} else {
			// The next cycle with work is the earliest pending wake-up
			// across the three event sources: explicitly posted events,
			// in-flight load data returns (loadHeap) and future-ready RS
			// entries (readyHeap). The latter two are consulted in place
			// rather than duplicated into the events heap. The events
			// minimum is peeked, not popped — once the skip lands on it,
			// drainStaleEvents removes it at the next step.
			next := int64(math.MaxInt64)
			if c.events.Len() > 0 {
				next = c.events.Min()
			}
			if h := &c.lsq.loadHeap; h.Len() > 0 && h.Min().at < next {
				next = h.Min().at
			}
			if h := &c.issue.readyHeap; h.Len() > 0 && h.Min().at < next {
				next = h.Min().at
			}
			if next == math.MaxInt64 {
				return c.stats, fmt.Errorf("simeng: deadlock at cycle %d (%d retired, %d in flight)",
					c.cycle, c.stats.Retired, c.seqDispatched-c.seqCommitted)
			}
			if next <= c.cycle {
				// drainStaleEvents should prevent this.
				next = c.cycle + 1
			}
			c.cycle = next
		}
		elapsed := c.cycle - prevCycle
		c.stats.Stalls[class] += elapsed
		if c.stallTracer != nil {
			c.stallTracer(class, prevCycle, elapsed)
		}
		c.stats.ROBOccupancy += occ * elapsed
		c.stats.RSOccupancy += int64(c.issue.rsCount) * elapsed
		if c.cycle > maxCycles {
			return c.stats, fmt.Errorf("simeng: exceeded cycle limit %d with %d retired: %w", maxCycles, c.stats.Retired, ErrCycleLimit)
		}
	}
	c.stats.Cycles = c.cycle + 1
	c.stats.Mem = c.mem.Stats()
	return c.stats, nil
}

// finished reports whether all work has drained.
func (c *Core) finished() bool {
	return c.fetch.streamDone && !c.fetch.havePeek &&
		c.fetchQ.Empty() && c.renameQ.Empty() &&
		c.seqCommitted == c.seqRenamed &&
		c.lsq.storeWriteQ.Empty()
}

// drainStaleEvents discards event timestamps at or before the current cycle,
// keeping the heap bounded by genuinely future events.
func (c *Core) drainStaleEvents() {
	for c.events.Len() > 0 && c.events.Min() <= c.cycle {
		c.events.Pop()
	}
}

// fail aborts the run with a structural error (generator bug).
func (c *Core) fail(format string, args ...any) {
	if c.runErr == nil {
		c.runErr = fmt.Errorf(format, args...)
	}
}
