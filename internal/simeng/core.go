package simeng

import (
	"fmt"
	"math"

	"armdse/internal/isa"
	"armdse/internal/sstmem"
)

// doneNever marks a result time that is not yet known.
const doneNever = math.MaxInt64

// entryState tracks an in-flight instruction through the back end.
type entryState uint8

const (
	stFree entryState = iota
	// stInRS: dispatched, waiting in the reservation station.
	stInRS
	// stExec: issued; resultAt gives completion (also stores post-AGU and
	// loads post-writeback — an entry with resultAt <= cycle is done).
	stExec
	// stLoadAGU: load issued on a port; line requests pending in loadReqQ.
	stLoadAGU
	// stLoadMem: all line requests issued; waiting for data return.
	stLoadMem
)

// entry is one reorder-buffer slot. The window is indexed by sequence number
// modulo the ROB size; slots recycle at commit.
//
// Readiness uses wakeup lists rather than per-cycle source polling: at
// dispatch each unresolved source links a (consumer, slot) node onto its
// producer's list; when the producer's completion time becomes known it
// walks the list, folding the time into each consumer's earliestReady and
// decrementing pendingSrcs. An entry is issueable when pendingSrcs is zero
// and earliestReady has passed.
type entry struct {
	resultAt int64
	memDone  int64
	nextLine uint64 // next un-requested byte of the access
	endAddr  uint64
	addr     uint64
	// earliestReady is the max known completion time of resolved sources.
	earliestReady int64
	// pc and dispatchedAt feed the optional commit tracer.
	pc           uint64
	dispatchedAt int64
	// wakeHead is the first (consumerSeq*4+slot) node of this entry's
	// consumer wake list, or -1.
	wakeHead int64
	// wakeNext are this entry's own per-source-slot list links.
	wakeNext [4]int64
	op       isa.Group
	sve      bool
	state    entryState
	nd       uint8
	// pendingSrcs counts sources whose producer completion is unknown.
	pendingSrcs uint8
	destClass   [2]uint8
}

// renamed is an instruction between rename and dispatch.
type renamed struct {
	srcSeq    [4]int64
	addr      uint64
	pc        uint64
	bytes     uint32
	op        isa.Group
	sve       bool
	nd, ns    uint8
	destClass [2]uint8
}

// TraceEvent records the lifetime of one retired instruction; events are
// delivered in program order at commit time.
type TraceEvent struct {
	// Seq is the instruction's global sequence number.
	Seq int64
	// PC is the instruction's byte address.
	PC uint64
	// Op is the execution group; SVE marks Z-register instructions.
	Op  isa.Group
	SVE bool
	// Dispatched, Done and Committed are the cycles the instruction
	// entered the window, produced its result, and retired.
	Dispatched int64
	Done       int64
	Committed  int64
}

// loadReq is a load whose address generation completes at availableAt.
type loadReq struct {
	seq         int64
	availableAt int64
}

// storeWrite is a committed store draining to memory.
type storeWrite struct {
	nextLine  uint64
	startAddr uint64
	endAddr   uint64
}

// portState is one execution port.
type portState struct {
	accept isa.GroupSet
	freeAt int64
}

// Core is one out-of-order core wired to a memory hierarchy. A Core runs a
// single instruction stream and is then exhausted; build a new Core (and
// hierarchy) per run.
type Core struct {
	cfg       Config
	mem       *sstmem.Hierarchy
	lineBytes uint64

	window []entry
	cp     int64 // window capacity (== ROBSize)

	seqRenamed    int64
	seqDispatched int64
	seqCommitted  int64

	regProducer [isa.NumRegClasses][]int64
	inFlight    [isa.NumRegClasses]int
	physAvail   [isa.NumRegClasses]int

	// rsCount is the reservation-station occupancy (dispatched, not yet
	// issued). Ready entries are tracked event-style: when an entry's
	// last source resolves it enters readyHeap keyed by its ready cycle,
	// and issueStage drains due entries into readyList (sorted by age)
	// where they wait only for ports — no per-cycle RS scan.
	rsCount   int
	readyHeap seqHeap
	readyList []int64
	ports     []portState

	fetchQ      ring[isa.Inst]
	renameQ     ring[renamed]
	loadReqQ    ring[loadReq]
	storeWriteQ ring[storeWrite]
	loadHeap    seqHeap
	events      int64Heap

	lqCount, sqCount int

	stream     isa.Stream
	peek       isa.Inst
	havePeek   bool
	streamDone bool
	lbActive   bool
	lbBranchPC uint64
	lbSeen     int

	// Byte-bandwidth credits persist across cycles (capped at one cycle's
	// allowance) so accesses wider than the per-cycle bandwidth drain
	// over multiple cycles instead of wedging.
	loadCredit   int64
	storeCredit  int64
	lastMemCycle int64

	cycle    int64
	progress bool
	runErr   error
	stats    Stats
	tracer   func(TraceEvent)
}

// SetTracer installs a per-instruction commit callback. Tracing is for
// debugging and the dsetrace tool; it slows simulation and must be set
// before Run.
func (c *Core) SetTracer(fn func(TraceEvent)) { c.tracer = fn }

// New builds a core from cfg attached to the given memory hierarchy.
func New(cfg Config, mem *sstmem.Hierarchy) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if mem == nil {
		return nil, fmt.Errorf("simeng: nil memory hierarchy")
	}
	c := &Core{
		cfg:         cfg,
		mem:         mem,
		lineBytes:   uint64(mem.LineBytes()),
		window:      make([]entry, cfg.ROBSize),
		cp:          int64(cfg.ROBSize),
		fetchQ:      newRing[isa.Inst](192),
		renameQ:     newRing[renamed](16),
		loadReqQ:    newRing[loadReq](cfg.LoadQueueSize),
		storeWriteQ: newRing[storeWrite](cfg.StoreQueueSize),
	}
	for _, p := range cfg.EffectivePorts() {
		c.ports = append(c.ports, portState{accept: p.Accept})
	}
	c.stats.PortIssued = make([]int64, len(c.ports))
	for cl := 0; cl < isa.NumRegClasses; cl++ {
		arch := isa.RegClass(cl).ArchRegs()
		c.regProducer[cl] = make([]int64, arch)
		for i := range c.regProducer[cl] {
			c.regProducer[cl][i] = -1
		}
	}
	c.physAvail[isa.GP] = cfg.GPRegisters - isa.GP.ArchRegs()
	c.physAvail[isa.FP] = cfg.FPSVERegisters - isa.FP.ArchRegs()
	c.physAvail[isa.Pred] = cfg.PredRegisters - isa.Pred.ArchRegs()
	c.physAvail[isa.Cond] = cfg.CondRegisters - isa.Cond.ArchRegs()
	return c, nil
}

// Simulate runs stream on a fresh core/hierarchy pair and returns the run
// statistics. It is the package's primary entry point.
func Simulate(core Config, mem sstmem.Config, stream isa.Stream) (Stats, error) {
	h, err := sstmem.New(mem)
	if err != nil {
		return Stats{}, err
	}
	c, err := New(core, h)
	if err != nil {
		return Stats{}, err
	}
	return c.Run(stream)
}

// DefaultMaxCycles bounds a run against livelock; it is far beyond any
// plausible real execution of the study's workloads.
const DefaultMaxCycles = int64(1) << 40

// Run executes the stream to completion and returns the statistics.
func (c *Core) Run(stream isa.Stream) (Stats, error) {
	return c.RunLimit(stream, DefaultMaxCycles)
}

// RunLimit is Run with an explicit cycle budget.
func (c *Core) RunLimit(stream isa.Stream, maxCycles int64) (Stats, error) {
	if c.stream != nil {
		return Stats{}, fmt.Errorf("simeng: core already used; build a new one per run")
	}
	c.stream = stream
	for {
		c.progress = false
		c.drainStaleEvents()
		c.commitStage()
		c.memoryStage()
		c.issueStage()
		c.dispatchStage()
		c.renameStage()
		c.fetchStage()
		if c.runErr != nil {
			return c.stats, c.runErr
		}
		if c.finished() {
			break
		}
		occ := c.seqDispatched - c.seqCommitted
		prevCycle := c.cycle
		if c.progress {
			c.cycle++
		} else {
			if c.events.Len() == 0 {
				return c.stats, fmt.Errorf("simeng: deadlock at cycle %d (%d retired, %d in flight)",
					c.cycle, c.stats.Retired, c.seqDispatched-c.seqCommitted)
			}
			next := c.events.Pop()
			if next <= c.cycle {
				// drainStaleEvents should prevent this.
				next = c.cycle + 1
			}
			c.cycle = next
		}
		elapsed := c.cycle - prevCycle
		c.stats.ROBOccupancy += occ * elapsed
		c.stats.RSOccupancy += int64(c.rsCount) * elapsed
		if c.cycle > maxCycles {
			return c.stats, fmt.Errorf("simeng: exceeded cycle limit %d with %d retired", maxCycles, c.stats.Retired)
		}
	}
	c.stats.Cycles = c.cycle + 1
	c.stats.Mem = c.mem.Stats()
	return c.stats, nil
}

// finished reports whether all work has drained.
func (c *Core) finished() bool {
	return c.streamDone && !c.havePeek &&
		c.fetchQ.Empty() && c.renameQ.Empty() &&
		c.seqCommitted == c.seqRenamed &&
		c.storeWriteQ.Empty()
}

// drainStaleEvents discards event timestamps at or before the current cycle,
// keeping the heap bounded by genuinely future events.
func (c *Core) drainStaleEvents() {
	for c.events.Len() > 0 && c.events.Min() <= c.cycle {
		c.events.Pop()
	}
}

// fail aborts the run with a structural error (generator bug).
func (c *Core) fail(format string, args ...any) {
	if c.runErr == nil {
		c.runErr = fmt.Errorf(format, args...)
	}
}

// ---------------------------------------------------------------- commit --

func (c *Core) commitStage() {
	for n := 0; n < c.cfg.CommitWidth && c.seqCommitted < c.seqDispatched; n++ {
		e := &c.window[c.seqCommitted%c.cp]
		if e.state != stExec || e.resultAt > c.cycle {
			return
		}
		if c.tracer != nil {
			c.tracer(TraceEvent{
				Seq:        c.seqCommitted,
				PC:         e.pc,
				Op:         e.op,
				SVE:        e.sve,
				Dispatched: e.dispatchedAt,
				Done:       e.resultAt,
				Committed:  c.cycle,
			})
		}
		c.stats.Retired++
		if e.sve {
			c.stats.SVERetired++
		}
		switch e.op {
		case isa.Load:
			c.stats.Loads++
			c.lqCount--
		case isa.Store:
			c.stats.Stores++
			// The write drains post-commit; the SQ entry is held until
			// its line requests have issued.
			c.storeWriteQ.Push(storeWrite{nextLine: e.addr, startAddr: e.addr, endAddr: e.endAddr})
		case isa.Branch:
			c.stats.Branches++
		}
		for i := 0; i < int(e.nd); i++ {
			c.inFlight[e.destClass[i]]--
		}
		e.state = stFree
		c.seqCommitted++
		c.progress = true
	}
}

// ---------------------------------------------------------------- memory --

func (c *Core) memoryStage() {
	completions := c.cfg.LSQCompletionWidth
	requests := c.cfg.MemRequestsPerCycle
	loadOps := c.cfg.MemLoadsPerCycle
	storeOps := c.cfg.MemStoresPerCycle

	// Replenish bandwidth credits for the cycles elapsed since the last
	// visit, capped at one cycle's allowance.
	delta := c.cycle - c.lastMemCycle
	if delta < 1 {
		delta = 1
	}
	c.lastMemCycle = c.cycle
	c.loadCredit += delta * int64(c.cfg.LoadBandwidth)
	if c.loadCredit > int64(c.cfg.LoadBandwidth) {
		c.loadCredit = int64(c.cfg.LoadBandwidth)
	}
	c.storeCredit += delta * int64(c.cfg.StoreBandwidth)
	if c.storeCredit > int64(c.cfg.StoreBandwidth) {
		c.storeCredit = int64(c.cfg.StoreBandwidth)
	}

	// Load writebacks: data that has returned claims LSQ completion slots.
	for completions > 0 && c.loadHeap.Len() > 0 && c.loadHeap.Min().at <= c.cycle {
		ev := c.loadHeap.Pop()
		e := &c.window[ev.seq%c.cp]
		e.resultAt = c.cycle
		e.state = stExec
		c.resolveWaiters(e, c.cycle)
		completions--
		c.progress = true
	}

	// Load line requests: head-of-queue loads split into per-line requests
	// under the request/kind/byte budgets.
	for !c.loadReqQ.Empty() {
		lr := c.loadReqQ.Peek()
		if lr.availableAt > c.cycle {
			break
		}
		e := &c.window[lr.seq%c.cp]
		blocked := false
		for e.nextLine < e.endAddr {
			lineStart := e.nextLine &^ (c.lineBytes - 1)
			portion := int64(minU64(e.endAddr, lineStart+c.lineBytes) - e.nextLine)
			// The per-cycle request/load limits are per memory
			// *instruction* (the paper's SST backend fetches a wide
			// vector's lines from parallel banks); only the byte
			// bandwidth meters the individual lines.
			if e.nextLine == e.addr && (requests < 1 || loadOps < 1) {
				blocked = true
				break
			}
			if c.loadCredit < 1 {
				blocked = true
				break
			}
			if e.nextLine == e.addr {
				requests--
				loadOps--
			}
			done := c.mem.Access(c.cycle, e.nextLine, false)
			if done > e.memDone {
				e.memDone = done
			}
			c.loadCredit -= portion
			c.stats.MemRequests++
			e.nextLine = lineStart + c.lineBytes
			c.progress = true
		}
		if blocked {
			// Budget-blocked with work pending: the budgets refresh next
			// cycle, so the idle skipper must not jump past it.
			c.events.Push(c.cycle + 1)
			break
		}
		e.state = stLoadMem
		c.loadHeap.Push(seqEvent{at: e.memDone, seq: lr.seq})
		c.events.Push(e.memDone)
		c.loadReqQ.Pop()
		c.progress = true
	}

	// Committed store writes drain through the remaining budgets; each
	// fully-issued store claims one LSQ completion slot and frees its SQ
	// entry.
	for completions > 0 && !c.storeWriteQ.Empty() {
		sw := c.storeWriteQ.Peek()
		blocked := false
		for sw.nextLine < sw.endAddr {
			lineStart := sw.nextLine &^ (c.lineBytes - 1)
			portion := int64(minU64(sw.endAddr, lineStart+c.lineBytes) - sw.nextLine)
			if sw.nextLine == sw.startAddr && (requests < 1 || storeOps < 1) {
				blocked = true
				break
			}
			if c.storeCredit < 1 {
				blocked = true
				break
			}
			if sw.nextLine == sw.startAddr {
				requests--
				storeOps--
			}
			c.mem.Access(c.cycle, sw.nextLine, true)
			c.storeCredit -= portion
			c.stats.MemRequests++
			sw.nextLine = lineStart + c.lineBytes
			c.progress = true
		}
		if blocked {
			c.events.Push(c.cycle + 1)
			break
		}
		c.storeWriteQ.Pop()
		c.sqCount--
		completions--
		c.progress = true
	}
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// ----------------------------------------------------------------- issue --

// resolveWaiters publishes e's completion time to every consumer on its
// wake list. Called exactly once per entry, when resultAt becomes known.
func (c *Core) resolveWaiters(e *entry, at int64) {
	n := e.wakeHead
	e.wakeHead = -1
	for n >= 0 {
		cseq := n >> 2
		cons := &c.window[cseq%c.cp]
		slot := n & 3
		n = cons.wakeNext[slot]
		cons.wakeNext[slot] = -1
		if at > cons.earliestReady {
			cons.earliestReady = at
		}
		cons.pendingSrcs--
		if cons.pendingSrcs == 0 {
			c.markReady(cseq, cons)
		}
	}
}

// markReady enqueues a fully-resolved entry for issue at its ready cycle.
func (c *Core) markReady(seq int64, e *entry) {
	at := e.earliestReady
	if at < c.cycle {
		at = c.cycle
	}
	c.readyHeap.Push(seqEvent{at: at, seq: seq})
	if at > c.cycle {
		c.events.Push(at)
	}
}

func (c *Core) issueStage() {
	// Pull newly ready entries into the age-ordered ready list.
	for c.readyHeap.Len() > 0 && c.readyHeap.Min().at <= c.cycle {
		seq := c.readyHeap.Pop().seq
		i := len(c.readyList)
		c.readyList = append(c.readyList, seq)
		for i > 0 && c.readyList[i-1] > seq {
			c.readyList[i] = c.readyList[i-1]
			i--
		}
		c.readyList[i] = seq
	}
	issued := 0
	for i := 0; i < len(c.readyList); i++ {
		seq := c.readyList[i]
		e := &c.window[seq%c.cp]
		port := -1
		for p := range c.ports {
			if c.ports[p].accept.Has(e.op) && c.ports[p].freeAt <= c.cycle {
				port = p
				break
			}
		}
		if port < 0 {
			continue
		}
		if e.op.Pipelined() {
			c.ports[port].freeAt = c.cycle + 1
		} else {
			c.ports[port].freeAt = c.cycle + int64(e.op.Latency())
		}
		c.stats.PortIssued[port]++
		switch e.op {
		case isa.Load:
			// Address generation this cycle; line requests from next.
			e.state = stLoadAGU
			c.loadReqQ.Push(loadReq{seq: seq, availableAt: c.cycle + 1})
			c.events.Push(c.cycle + 1)
		case isa.Store:
			// Address and data captured; the write drains post-commit.
			e.state = stExec
			e.resultAt = c.cycle + 1
			c.events.Push(e.resultAt)
			c.resolveWaiters(e, e.resultAt)
		default:
			e.state = stExec
			e.resultAt = c.cycle + int64(e.op.Latency())
			c.events.Push(e.resultAt)
			c.resolveWaiters(e, e.resultAt)
		}
		c.readyList[i] = -1
		c.rsCount--
		issued++
		c.progress = true
	}
	if issued > 0 {
		kept := c.readyList[:0]
		for _, seq := range c.readyList {
			if seq >= 0 {
				kept = append(kept, seq)
			}
		}
		c.readyList = kept
	}
}

// -------------------------------------------------------------- dispatch --

func (c *Core) dispatchStage() {
	for n := 0; n < isa.DispatchRate && !c.renameQ.Empty(); n++ {
		rec := c.renameQ.Peek()
		if c.seqDispatched-c.seqCommitted >= c.cp {
			c.stats.ROBStalls++
			return
		}
		if c.rsCount >= isa.ReservationStationSize {
			c.stats.RSStalls++
			return
		}
		switch rec.op {
		case isa.Load:
			if c.lqCount >= c.cfg.LoadQueueSize {
				c.stats.LQStalls++
				return
			}
		case isa.Store:
			if c.sqCount >= c.cfg.StoreQueueSize {
				c.stats.SQStalls++
				return
			}
		}
		r := c.renameQ.Pop()
		seq := c.seqDispatched
		c.seqDispatched++
		e := &c.window[seq%c.cp]
		*e = entry{
			resultAt:     doneNever,
			nextLine:     r.addr,
			endAddr:      r.addr + uint64(r.bytes),
			addr:         r.addr,
			pc:           r.pc,
			dispatchedAt: c.cycle,
			wakeHead:     -1,
			wakeNext:     [4]int64{-1, -1, -1, -1},
			op:           r.op,
			sve:          r.sve,
			state:        stInRS,
			nd:           r.nd,
			destClass:    r.destClass,
		}
		// Resolve sources now or subscribe to their producers.
		for i := 0; i < int(r.ns); i++ {
			s := r.srcSeq[i]
			if s < 0 || s < c.seqCommitted {
				continue // architectural or committed: ready
			}
			p := &c.window[s%c.cp]
			if p.resultAt != doneNever {
				if p.resultAt > e.earliestReady {
					e.earliestReady = p.resultAt
				}
				continue
			}
			// Producer completion unknown: link a wake node.
			e.wakeNext[i] = p.wakeHead
			p.wakeHead = seq*4 + int64(i)
			e.pendingSrcs++
		}
		if e.pendingSrcs == 0 {
			c.markReady(seq, e)
		}
		switch r.op {
		case isa.Load:
			c.lqCount++
		case isa.Store:
			c.sqCount++
		}
		c.rsCount++
		c.progress = true
	}
}

// ---------------------------------------------------------------- rename --

func (c *Core) renameStage() {
	for n := 0; n < c.cfg.FrontendWidth && !c.fetchQ.Empty() && !c.renameQ.Full(); n++ {
		in := c.fetchQ.Peek()
		// Check free physical registers for every destination class.
		var need [isa.NumRegClasses]int
		for i := 0; i < int(in.NDests); i++ {
			need[in.Dests[i].Class]++
		}
		for cl := 0; cl < isa.NumRegClasses; cl++ {
			if need[cl] > 0 && c.inFlight[cl]+need[cl] > c.physAvail[cl] {
				c.stats.RenameStalls[cl]++
				return
			}
		}
		inst := c.fetchQ.Pop()
		seq := c.seqRenamed
		c.seqRenamed++
		var r renamed
		r.op = inst.Op
		r.sve = inst.SVE
		r.pc = inst.PC
		r.nd = inst.NDests
		r.ns = inst.NSrcs
		if inst.Op.IsMem() {
			if inst.Mem.Bytes == 0 {
				c.fail("simeng: zero-byte memory access at pc %#x", inst.PC)
				return
			}
			r.addr = inst.Mem.Addr
			r.bytes = inst.Mem.Bytes
		}
		for i := 0; i < int(inst.NSrcs); i++ {
			s := inst.Srcs[i]
			if int(s.ID) >= len(c.regProducer[s.Class]) {
				c.fail("simeng: source register %v out of architectural range at pc %#x", s, inst.PC)
				return
			}
			r.srcSeq[i] = c.regProducer[s.Class][s.ID]
		}
		for i := 0; i < int(inst.NDests); i++ {
			d := inst.Dests[i]
			if int(d.ID) >= len(c.regProducer[d.Class]) {
				c.fail("simeng: destination register %v out of architectural range at pc %#x", d, inst.PC)
				return
			}
			c.regProducer[d.Class][d.ID] = seq
			r.destClass[i] = uint8(d.Class)
			c.inFlight[d.Class]++
		}
		c.renameQ.Push(r)
		c.progress = true
	}
}

// ----------------------------------------------------------------- fetch --

// ensurePeek keeps a one-instruction lookahead over the stream.
func (c *Core) ensurePeek() bool {
	if c.havePeek {
		return true
	}
	if c.streamDone {
		return false
	}
	if !c.stream.Next(&c.peek) {
		c.streamDone = true
		return false
	}
	c.havePeek = true
	return true
}

func (c *Core) fetchStage() {
	fbs := uint64(c.cfg.FetchBlockSize)
	var blockEnd uint64
	blockSet := false
	for n := 0; n < c.cfg.FrontendWidth && !c.fetchQ.Full(); n++ {
		if !c.ensurePeek() {
			return
		}
		pc := c.peek.PC
		if !c.lbActive {
			if !blockSet {
				blockEnd = (pc &^ (fbs - 1)) + fbs
				blockSet = true
			}
			if pc >= blockEnd || pc < blockEnd-fbs {
				// Next instruction lies in another fetch block.
				return
			}
		}
		inst := c.peek
		c.havePeek = false
		c.fetchQ.Push(inst)
		c.stats.Fetched++
		if c.lbActive {
			c.stats.LoopBufferFetched++
		}
		c.progress = true
		if inst.Op != isa.Branch {
			continue
		}
		if inst.Branch.Taken {
			span := 0
			if inst.Branch.LoopBack && inst.PC >= inst.Branch.Target {
				span = int((inst.PC-inst.Branch.Target)/isa.InstBytes) + 1
			}
			if inst.Branch.LoopBack && span > 0 && span <= c.cfg.LoopBufferSize {
				if inst.PC == c.lbBranchPC {
					c.lbSeen++
					if c.lbSeen >= 2 {
						// The whole loop body has streamed through
						// twice: lock it into the loop buffer.
						c.lbActive = true
					}
				} else {
					c.lbBranchPC = inst.PC
					c.lbSeen = 1
					c.lbActive = false
				}
			} else {
				c.lbActive = false
				c.lbBranchPC = 0
				c.lbSeen = 0
			}
			if !c.lbActive {
				// Taken-branch redirect ends this cycle's fetch group.
				return
			}
		} else if inst.Branch.LoopBack && inst.PC == c.lbBranchPC {
			// Loop exit: release the loop buffer.
			c.lbActive = false
			c.lbBranchPC = 0
			c.lbSeen = 0
		}
	}
}
