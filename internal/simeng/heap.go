package simeng

// int64Heap is a minimal binary min-heap of cycle timestamps, used as the
// event wheel driving idle-cycle skipping.
type int64Heap struct{ a []int64 }

func (h *int64Heap) Len() int { return len(h.a) }

// reset empties the heap, retaining the backing array for reuse by the next
// run of a pooled core.
func (h *int64Heap) reset() { h.a = h.a[:0] }

func (h *int64Heap) Push(v int64) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *int64Heap) Min() int64 { return h.a[0] }

func (h *int64Heap) Pop() int64 {
	v := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && h.a[l] < h.a[m] {
			m = l
		}
		if r < last && h.a[r] < h.a[m] {
			m = r
		}
		if m == i {
			break
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
	return v
}

// seqEvent pairs a completion cycle with a window sequence number.
type seqEvent struct {
	at  int64
	seq int64
}

// seqHeap is a min-heap of seqEvents ordered by completion cycle, used for
// in-flight load data returns.
type seqHeap struct{ a []seqEvent }

func (h *seqHeap) Len() int { return len(h.a) }

// reset empties the heap, retaining the backing array for reuse by the next
// run of a pooled core.
func (h *seqHeap) reset() { h.a = h.a[:0] }

func (h *seqHeap) Push(v seqEvent) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p].at <= h.a[i].at {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *seqHeap) Min() seqEvent { return h.a[0] }

func (h *seqHeap) Pop() seqEvent {
	v := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && h.a[l].at < h.a[m].at {
			m = l
		}
		if r < last && h.a[r].at < h.a[m].at {
			m = r
		}
		if m == i {
			break
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
	return v
}
