package simeng

// Per-cycle stall attribution. Every simulated cycle is charged to exactly
// one StallClass, top-down style: a cycle that retires work is Busy; a
// no-retire cycle is attributed to the most upstream resource that provably
// blocked it, walking from the dispatch structures (ROB/RS/LQ/SQ full)
// through rename register pressure down to the state of the oldest
// in-flight instruction (waiting on memory, on a port, or on operands).
// Because the attribution is a total function of the cycle's observed stage
// reports, the breakdown sums exactly to Stats.Cycles on every successful
// run — the invariant the property tests pin.
//
// The stage components do not classify anything themselves: each one posts
// raw facts ("dispatch was ROB-blocked", "the LSQ ran out of byte credit")
// onto the shared stallBus during its turn, and the run loop classifies the
// cycle once, after all stages have reported. Attribution is purely
// observational — it never changes simulated behaviour (the golden tests
// pin that).

// StallClass is one bucket of the per-cycle attribution taxonomy.
type StallClass uint8

const (
	// StallBusy: at least one instruction committed this cycle.
	StallBusy StallClass = iota
	// StallFrontend: the window was empty and the front end supplied
	// nothing — pipeline fill, fetch-block breaks, or stream exhaustion.
	StallFrontend
	// StallRename: rename was blocked waiting for a free physical
	// register (any class).
	StallRename
	// StallRS: dispatch was blocked on a full reservation station.
	StallRS
	// StallROB: dispatch was blocked on a full reorder buffer.
	StallROB
	// StallLQ / StallSQ: dispatch was blocked on a full load/store queue.
	StallLQ
	StallSQ
	// StallMemBandwidth: memory work was throttled by the per-cycle
	// request/byte budgets (including the post-stream store drain).
	StallMemBandwidth
	// StallMemLatency: the oldest instruction was waiting for memory data
	// with bandwidth to spare.
	StallMemLatency
	// StallPortConflict: ready instructions existed but no accepting
	// execution port was free.
	StallPortConflict
	// StallExec: the oldest instruction was executing or waiting for
	// operands (dependency chains, execution latency).
	StallExec

	// NumStallClasses is the taxonomy size.
	NumStallClasses
)

// stallClassNames are the short column/report names, in enum order.
var stallClassNames = [NumStallClasses]string{
	"busy", "frontend", "rename", "rs", "rob", "lq", "sq",
	"mem-bw", "mem-lat", "port", "exec",
}

// String returns the class's short name.
func (c StallClass) String() string {
	if c < NumStallClasses {
		return stallClassNames[c]
	}
	return "invalid"
}

// StallClassNames returns the taxonomy's short names in enum order — the
// canonical order of dataset stall columns and report rows.
func StallClassNames() []string {
	out := make([]string, NumStallClasses)
	copy(out, stallClassNames[:])
	return out
}

// StallBreakdown is a per-class cycle count; on a successful run it sums
// exactly to Stats.Cycles.
type StallBreakdown [NumStallClasses]int64

// Total returns the summed cycle count across all classes.
func (b StallBreakdown) Total() int64 {
	var t int64
	for _, v := range b {
		t += v
	}
	return t
}

// ByName returns the cycle count of the named class and whether the name is
// part of the taxonomy.
func (b StallBreakdown) ByName(name string) (int64, bool) {
	for c, n := range stallClassNames {
		if n == name {
			return b[c], true
		}
	}
	return 0, false
}

// stallBus is the shared per-cycle stall-accounting bus: each stage
// component posts what blocked it during its turn, and the run loop
// classifies the cycle from the collected reports. Reset at the top of
// every simulated step.
type stallBus struct {
	// committed counts instructions retired this cycle (commit stage).
	committed int
	// robFull/rsFull/lqFull/sqFull: dispatch blocked on the structure.
	robFull, rsFull, lqFull, sqFull bool
	// renameBlocked: rename waited for a free physical register.
	renameBlocked bool
	// memBWBlocked: the LSQ hit a per-cycle request/byte budget with work
	// still pending.
	memBWBlocked bool
	// portBlocked: at least one ready instruction found no free port.
	portBlocked bool
}

func (b *stallBus) reset() { *b = stallBus{} }

// classifyCycle charges the current cycle to one StallClass from the bus
// reports and the state of the oldest in-flight instruction. Called once
// per simulated step, after every stage has run.
func (c *Core) classifyCycle() StallClass {
	b := &c.bus
	if b.committed > 0 {
		return StallBusy
	}
	if c.seqCommitted == c.seqDispatched {
		// Window empty: either the post-stream store drain or the front
		// end failed to supply work.
		switch {
		case !c.lsq.storeWriteQ.Empty():
			return StallMemBandwidth
		case b.renameBlocked:
			return StallRename
		default:
			return StallFrontend
		}
	}
	// A window head waiting on memory takes precedence over everything
	// downstream of it: the structures behind a memory-bound head fill as
	// a symptom, not a cause, so the cycle is memory's whichever queue
	// happened to clog first.
	head := &c.window[c.seqCommitted&c.wmask]
	if head.state == stLoadAGU || head.state == stLoadMem {
		if b.memBWBlocked {
			return StallMemBandwidth
		}
		return StallMemLatency
	}
	switch {
	case b.robFull:
		return StallROB
	case b.rsFull:
		return StallRS
	case b.lqFull:
		return StallLQ
	case b.sqFull:
		return StallSQ
	case b.renameBlocked:
		return StallRename
	}
	if head.state == stInRS && b.portBlocked {
		return StallPortConflict
	}
	// Executing, waiting for operands, or finished awaiting next cycle's
	// commit slot.
	return StallExec
}
