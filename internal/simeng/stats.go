package simeng

import (
	"fmt"

	"armdse/internal/isa"
)

// Stats summarises one simulated run. Cycles is the study's target variable.
type Stats struct {
	// Cycles is the total execution time in core cycles.
	Cycles int64
	// Retired counts committed instructions.
	Retired int64
	// SVERetired counts committed instructions with at least one Z
	// register operand — the Fig. 1 vectorisation numerator.
	SVERetired int64
	// Loads, Stores and Branches count committed instructions by kind.
	Loads    int64
	Stores   int64
	Branches int64

	// Fetched counts instructions supplied by the front end;
	// LoopBufferFetched is the subset streamed from the loop buffer.
	Fetched           int64
	LoopBufferFetched int64

	// RenameStalls counts instruction-cycles the rename stage stalled for
	// a free physical register, per register class.
	RenameStalls [isa.NumRegClasses]int64
	// ROBStalls, RSStalls, LQStalls and SQStalls count instruction-cycles
	// dispatch stalled on a full structure.
	ROBStalls int64
	RSStalls  int64
	LQStalls  int64
	SQStalls  int64

	// Stalls is the top-down cycle attribution: every simulated cycle is
	// charged to exactly one StallClass, so on a successful run
	// Stalls.Total() == Cycles. See stall.go for the taxonomy.
	Stalls StallBreakdown

	// MemRequests counts line requests issued to the backend.
	MemRequests int64
	// Mem carries the memory-backend counters.
	Mem MemStats

	// PortIssued counts instructions issued per execution port, in the
	// order of Config.EffectivePorts().
	PortIssued []int64
	// ROBOccupancy and RSOccupancy integrate structure occupancy over
	// time (entry-cycles); divide by Cycles for the mean.
	ROBOccupancy int64
	RSOccupancy  int64
}

// AvgROBOccupancy returns the mean reorder-buffer occupancy.
func (s Stats) AvgROBOccupancy() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.ROBOccupancy) / float64(s.Cycles)
}

// AvgRSOccupancy returns the mean reservation-station occupancy.
func (s Stats) AvgRSOccupancy() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.RSOccupancy) / float64(s.Cycles)
}

// PortUtilisation returns each port's issued-instructions-per-cycle.
func (s Stats) PortUtilisation() []float64 {
	out := make([]float64, len(s.PortIssued))
	if s.Cycles == 0 {
		return out
	}
	for i, n := range s.PortIssued {
		out[i] = float64(n) / float64(s.Cycles)
	}
	return out
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// VectorisationPct returns the percentage of retired instructions that are
// SVE instructions.
func (s Stats) VectorisationPct() float64 {
	if s.Retired == 0 {
		return 0
	}
	return 100 * float64(s.SVERetired) / float64(s.Retired)
}

// StallPct returns class's share of total cycles as a percentage.
func (s Stats) StallPct(class StallClass) float64 {
	if s.Cycles == 0 || class >= NumStallClasses {
		return 0
	}
	return 100 * float64(s.Stalls[class]) / float64(s.Cycles)
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("cycles=%d retired=%d ipc=%.3f sve=%.1f%% l1miss=%d l2miss=%d",
		s.Cycles, s.Retired, s.IPC(), s.VectorisationPct(), s.Mem.L1Misses, s.Mem.L2Misses)
}
