package simeng

import (
	"math/bits"

	"armdse/internal/isa"
)

// issueUnit is the scheduler stage component: the reservation station,
// wakeup/select machinery and the execution ports.
type issueUnit struct {
	// rsCount is the reservation-station occupancy (dispatched, not yet
	// issued). Ready entries are tracked event-style: when an entry's
	// last source resolves it enters readyHeap keyed by its ready cycle,
	// and issueStage drains due entries into readyList (sorted by age)
	// where they wait only for ports — no per-cycle RS scan.
	rsCount   int
	readyHeap seqHeap
	readyList []int64
	ports     []portState
	// groupPorts[g] is the bitmask of ports accepting group g, so port
	// selection is one AND + trailing-zeros instead of a per-port
	// GroupSet.Has scan. Bit order is port index order, which keeps the
	// lowest-set-bit pick identical to the original first-match scan.
	groupPorts [isa.NumGroups]uint64
}

// portState is one execution port.
type portState struct {
	accept isa.GroupSet
	freeAt int64
}

// reset re-initialises the unit for a new run, reusing the port slice and
// the ready heap/list backing arrays.
func (u *issueUnit) reset(cfg Config) {
	u.rsCount = 0
	u.readyHeap.reset()
	u.readyList = u.readyList[:0]
	u.ports = u.ports[:0]
	u.groupPorts = [isa.NumGroups]uint64{}
	for i, p := range cfg.EffectivePorts() {
		u.ports = append(u.ports, portState{accept: p.Accept})
		for g := isa.Group(0); g < isa.NumGroups; g++ {
			if p.Accept.Has(g) {
				u.groupPorts[g] |= 1 << i
			}
		}
	}
}

// resolveWaiters publishes e's completion time to every consumer on its
// wake list. Called exactly once per entry, when resultAt becomes known.
func (c *Core) resolveWaiters(e *entry, at int64) {
	n := e.wakeHead
	e.wakeHead = -1
	for n >= 0 {
		cseq := n >> 2
		cons := &c.window[cseq&c.wmask]
		slot := n & 3
		n = cons.wakeNext[slot]
		cons.wakeNext[slot] = -1
		if at > cons.earliestReady {
			cons.earliestReady = at
		}
		cons.pendingSrcs--
		if cons.pendingSrcs == 0 {
			c.markReady(cseq, cons)
		}
	}
}

// markReady enqueues a fully-resolved entry for issue at its ready cycle.
//
// Entries ready now bypass the heap and insert straight into the age-ordered
// ready list — equivalent to the heap round-trip because the list's content
// at selection time is the same sorted set either way: callers that run
// before issueStage in a step (memoryStage completions) make the entry
// selectable this cycle through both paths, callers that run after it
// (dispatch) make it selectable next cycle through both paths, and
// issueStage's own resolveWaiters calls always yield future ready times
// (resultAt >= cycle+1), so the list is never extended mid-selection.
func (c *Core) markReady(seq int64, e *entry) {
	at := e.earliestReady
	if at <= c.cycle {
		u := &c.issue
		i := len(u.readyList)
		u.readyList = append(u.readyList, seq)
		for i > 0 && u.readyList[i-1] > seq {
			u.readyList[i] = u.readyList[i-1]
			i--
		}
		u.readyList[i] = seq
		return
	}
	// The ready time is not posted to the events heap: the idle skipper
	// consults readyHeap.Min directly, so the wake-up is already
	// represented without the duplicate heap traffic.
	c.issue.readyHeap.Push(seqEvent{at: at, seq: seq})
}

// issueStage selects ready instructions onto free execution ports, oldest
// first. Ready instructions left over after selection could only have been
// blocked by port availability, which is posted to the stall bus.
func (c *Core) issueStage() {
	u := &c.issue
	// Pull newly ready entries into the age-ordered ready list.
	for u.readyHeap.Len() > 0 && u.readyHeap.Min().at <= c.cycle {
		seq := u.readyHeap.Pop().seq
		i := len(u.readyList)
		u.readyList = append(u.readyList, seq)
		for i > 0 && u.readyList[i-1] > seq {
			u.readyList[i] = u.readyList[i-1]
			i--
		}
		u.readyList[i] = seq
	}
	if len(u.readyList) == 0 {
		return
	}
	issued := 0
	// free is the bitmask of ports idle this cycle; issuing onto a port
	// always occupies it past this cycle, so the mask only loses bits
	// within the loop. Selection picks the lowest free accepting port —
	// identical to the original first-match index scan.
	var free uint64
	for p := range u.ports {
		if u.ports[p].freeAt <= c.cycle {
			free |= 1 << p
		}
	}
	for i := 0; i < len(u.readyList); i++ {
		seq := u.readyList[i]
		e := &c.window[seq&c.wmask]
		m := free & u.groupPorts[e.op]
		if m == 0 {
			continue
		}
		port := bits.TrailingZeros64(m)
		free &^= 1 << port
		if e.op.Pipelined() {
			u.ports[port].freeAt = c.cycle + 1
		} else {
			u.ports[port].freeAt = c.cycle + int64(e.op.Latency())
		}
		c.stats.PortIssued[port]++
		e.issuedAt = c.cycle
		switch e.op {
		case isa.Load:
			// Address generation this cycle; line requests from next.
			e.state = stLoadAGU
			c.lsq.loadReqQ.Push(loadReq{seq: seq, availableAt: c.cycle + 1})
			c.postEvent(c.cycle + 1)
		case isa.Store:
			// Address and data captured; the write drains post-commit.
			e.state = stExec
			e.resultAt = c.cycle + 1
			c.postEvent(e.resultAt)
			c.resolveWaiters(e, e.resultAt)
		default:
			e.state = stExec
			e.resultAt = c.cycle + int64(e.op.Latency())
			c.postEvent(e.resultAt)
			c.resolveWaiters(e, e.resultAt)
		}
		u.readyList[i] = -1
		u.rsCount--
		issued++
		c.progress = true
	}
	if issued > 0 {
		kept := u.readyList[:0]
		for _, seq := range u.readyList {
			if seq >= 0 {
				kept = append(kept, seq)
			}
		}
		u.readyList = kept
	}
	if len(u.readyList) > 0 {
		// Everything still in the list was ready this cycle (the heap only
		// releases due entries) and found no accepting free port.
		c.bus.portBlocked = true
	}
}
