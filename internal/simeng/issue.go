package simeng

import "armdse/internal/isa"

// issueUnit is the scheduler stage component: the reservation station,
// wakeup/select machinery and the execution ports.
type issueUnit struct {
	// rsCount is the reservation-station occupancy (dispatched, not yet
	// issued). Ready entries are tracked event-style: when an entry's
	// last source resolves it enters readyHeap keyed by its ready cycle,
	// and issueStage drains due entries into readyList (sorted by age)
	// where they wait only for ports — no per-cycle RS scan.
	rsCount   int
	readyHeap seqHeap
	readyList []int64
	ports     []portState
}

// portState is one execution port.
type portState struct {
	accept isa.GroupSet
	freeAt int64
}

func (u *issueUnit) init(cfg Config) {
	for _, p := range cfg.EffectivePorts() {
		u.ports = append(u.ports, portState{accept: p.Accept})
	}
}

// resolveWaiters publishes e's completion time to every consumer on its
// wake list. Called exactly once per entry, when resultAt becomes known.
func (c *Core) resolveWaiters(e *entry, at int64) {
	n := e.wakeHead
	e.wakeHead = -1
	for n >= 0 {
		cseq := n >> 2
		cons := &c.window[cseq%c.cp]
		slot := n & 3
		n = cons.wakeNext[slot]
		cons.wakeNext[slot] = -1
		if at > cons.earliestReady {
			cons.earliestReady = at
		}
		cons.pendingSrcs--
		if cons.pendingSrcs == 0 {
			c.markReady(cseq, cons)
		}
	}
}

// markReady enqueues a fully-resolved entry for issue at its ready cycle.
func (c *Core) markReady(seq int64, e *entry) {
	at := e.earliestReady
	if at < c.cycle {
		at = c.cycle
	}
	c.issue.readyHeap.Push(seqEvent{at: at, seq: seq})
	if at > c.cycle {
		c.events.Push(at)
	}
}

// issueStage selects ready instructions onto free execution ports, oldest
// first. Ready instructions left over after selection could only have been
// blocked by port availability, which is posted to the stall bus.
func (c *Core) issueStage() {
	u := &c.issue
	// Pull newly ready entries into the age-ordered ready list.
	for u.readyHeap.Len() > 0 && u.readyHeap.Min().at <= c.cycle {
		seq := u.readyHeap.Pop().seq
		i := len(u.readyList)
		u.readyList = append(u.readyList, seq)
		for i > 0 && u.readyList[i-1] > seq {
			u.readyList[i] = u.readyList[i-1]
			i--
		}
		u.readyList[i] = seq
	}
	issued := 0
	for i := 0; i < len(u.readyList); i++ {
		seq := u.readyList[i]
		e := &c.window[seq%c.cp]
		port := -1
		for p := range u.ports {
			if u.ports[p].accept.Has(e.op) && u.ports[p].freeAt <= c.cycle {
				port = p
				break
			}
		}
		if port < 0 {
			continue
		}
		if e.op.Pipelined() {
			u.ports[port].freeAt = c.cycle + 1
		} else {
			u.ports[port].freeAt = c.cycle + int64(e.op.Latency())
		}
		c.stats.PortIssued[port]++
		switch e.op {
		case isa.Load:
			// Address generation this cycle; line requests from next.
			e.state = stLoadAGU
			c.lsq.loadReqQ.Push(loadReq{seq: seq, availableAt: c.cycle + 1})
			c.events.Push(c.cycle + 1)
		case isa.Store:
			// Address and data captured; the write drains post-commit.
			e.state = stExec
			e.resultAt = c.cycle + 1
			c.events.Push(e.resultAt)
			c.resolveWaiters(e, e.resultAt)
		default:
			e.state = stExec
			e.resultAt = c.cycle + int64(e.op.Latency())
			c.events.Push(e.resultAt)
			c.resolveWaiters(e, e.resultAt)
		}
		u.readyList[i] = -1
		u.rsCount--
		issued++
		c.progress = true
	}
	if issued > 0 {
		kept := u.readyList[:0]
		for _, seq := range u.readyList {
			if seq >= 0 {
				kept = append(kept, seq)
			}
		}
		u.readyList = kept
	}
	if len(u.readyList) > 0 {
		// Everything still in the list was ready this cycle (the heap only
		// releases due entries) and found no accepting free port.
		c.bus.portBlocked = true
	}
}
