package simeng_test

import (
	"math"
	"testing"

	"armdse/internal/isa"
	"armdse/internal/params"
	"armdse/internal/simeng"
	"armdse/internal/sstmem"
	"armdse/internal/workload"
)

func tx2BoundModel(t *testing.T) *simeng.BoundModel {
	t.Helper()
	cfg := params.ThunderX2()
	m, err := simeng.NewBoundModel(cfg.Core, cfg.MemProfile())
	if err != nil {
		t.Fatalf("NewBoundModel: %v", err)
	}
	return m
}

func TestNewBoundModelRejectsBadProfile(t *testing.T) {
	cfg := params.ThunderX2()
	bad := cfg.MemProfile()
	bad.LineBytes = 48
	if _, err := simeng.NewBoundModel(cfg.Core, bad); err == nil {
		t.Errorf("line width 48 accepted, want error")
	}
	bad = cfg.MemProfile()
	bad.RAMLatency = 0
	if _, err := simeng.NewBoundModel(cfg.Core, bad); err == nil {
		t.Errorf("zero RAM latency accepted, want error")
	}
}

// TestBoundTermsHandStream checks the individual roofline terms against a
// hand-computed trace.
func TestBoundTermsHandStream(t *testing.T) {
	m := tx2BoundModel(t) // commit 4, frontend 4, lsq 2, loadBW 32, storeBW 16, req 3/2/1, line 64

	// 8 ALU + 4 loads of 64B (distinct lines) + 2 stores of 16B (one line).
	insts := make([]isa.Inst, 0, 14)
	for i := 0; i < 8; i++ {
		insts = append(insts, isa.Inst{Op: isa.IntALU})
	}
	for i := 0; i < 4; i++ {
		insts = append(insts, isa.Inst{Op: isa.Load, Mem: isa.MemRef{Addr: uint64(0x10000 + 64*i), Bytes: 64}})
	}
	for i := 0; i < 2; i++ {
		insts = append(insts, isa.Inst{Op: isa.Store, Mem: isa.MemRef{Addr: uint64(0x20000 + 16*i), Bytes: 16}})
	}
	st := isa.CollectStreamStats(isa.NewSliceStream(insts))
	b := m.Bounds(st)

	if want := int64(4); b.Terms.Retire != want { // ceil(14/4)
		t.Errorf("Retire = %d, want %d", b.Terms.Retire, want)
	}
	if want := int64(4); b.Terms.Frontend != want {
		t.Errorf("Frontend = %d, want %d", b.Terms.Frontend, want)
	}
	if want := int64(3); b.Terms.LSQ != want { // ceil(6/2)
		t.Errorf("LSQ = %d, want %d", b.Terms.LSQ, want)
	}
	if want := int64(8); b.Terms.LoadBW != want { // ceil(256/32)
		t.Errorf("LoadBW = %d, want %d", b.Terms.LoadBW, want)
	}
	if want := int64(2); b.Terms.StoreBW != want { // ceil(32/16)
		t.Errorf("StoreBW = %d, want %d", b.Terms.StoreBW, want)
	}
	// Per-instruction request budgets: 6 mem insts, 4 loads, 2 stores →
	// max(ceil(6/3), ceil(4/2), ceil(2/1)) = 2.
	if want := int64(2); b.Terms.MemReq != want {
		t.Errorf("MemReq = %d, want %d", b.Terms.MemReq, want)
	}
	// Port classes: 6 mem insts on 3 LS ports = 2; 8 ALU on 3 M ports = 3.
	if want := int64(3); b.Terms.Port != want {
		t.Errorf("Port = %d, want %d", b.Terms.Port, want)
	}
	// Unique 64B lines: 4 load lines + 1 store line = 5.
	// RAMBW = ceil(4×interval) + ramLat; interval = 64/(16/2.5) = 10,
	// ramLat = 110×2.5 = 275 → 315.
	if want := int64(315); b.Terms.RAMBW != want {
		t.Errorf("RAMBW = %d, want %d", b.Terms.RAMBW, want)
	}
	if b.Lower != 315 {
		t.Errorf("Lower = %d, want 315 (RAM bandwidth binding)", b.Lower)
	}
	if b.Upper < b.Lower {
		t.Errorf("Upper %d < Lower %d", b.Upper, b.Lower)
	}
	if want := int64(5 * 64); b.FootprintBytes != want {
		t.Errorf("FootprintBytes = %d, want %d", b.FootprintBytes, want)
	}
}

func TestBoundFeaturesAndPredictedStats(t *testing.T) {
	m := tx2BoundModel(t)
	insts := []isa.Inst{
		{Op: isa.Load, Mem: isa.MemRef{Addr: 0x1000, Bytes: 64}},
		{Op: isa.SVEFMA, SVE: true},
		{Op: isa.Branch, Branch: isa.BranchInfo{Taken: true}},
	}
	st := isa.CollectStreamStats(isa.NewSliceStream(insts))
	b := m.Bounds(st)

	feats := m.AppendFeatures(nil, b)
	if len(feats) != simeng.NumBoundFeatures {
		t.Fatalf("AppendFeatures emitted %d values, want %d", len(feats), simeng.NumBoundFeatures)
	}
	for i, f := range feats {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			t.Errorf("feature %d is %v", i, f)
		}
	}

	const cycles = 1000
	s := m.PredictedStats(st, b, cycles)
	if s.Cycles != cycles || s.Retired != 3 || s.SVERetired != 1 ||
		s.Loads != 1 || s.Stores != 0 || s.Branches != 1 {
		t.Errorf("predicted stats counts wrong: %+v", s)
	}
	if got := s.Stalls.Total(); got != cycles {
		t.Errorf("stall breakdown sums to %d, want %d", got, cycles)
	}
	if s.Stalls[simeng.StallBusy] != b.Terms.Retire {
		t.Errorf("busy = %d, want retire term %d", s.Stalls[simeng.StallBusy], b.Terms.Retire)
	}
}

// TestBoundsBracketGoldenCycles is the bracket fixture of the evaluator
// seam: on every run of the golden 24-run harness (six pinned configs × the
// four test workloads, exact sst simulation) the analytical bounds must
// satisfy Lower ≤ Cycles ≤ Upper.
func TestBoundsBracketGoldenCycles(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the golden matrix")
	}
	for name, cfg := range goldenConfigs() {
		m, err := simeng.NewBoundModel(cfg.Core, cfg.MemProfile())
		if err != nil {
			t.Fatalf("%s: NewBoundModel: %v", name, err)
		}
		for _, w := range workload.TestSuite() {
			prog, err := w.Program(cfg.Core.VectorLength)
			if err != nil {
				t.Fatalf("%s/%s: program: %v", name, w.Name(), err)
			}
			h, err := sstmem.New(cfg.Mem)
			if err != nil {
				t.Fatalf("%s: hierarchy: %v", name, err)
			}
			c, err := simeng.New(cfg.Core, h)
			if err != nil {
				t.Fatalf("%s: core: %v", name, err)
			}
			exact, err := c.Run(prog.Stream())
			if err != nil {
				t.Fatalf("%s/%s: run: %v", name, w.Name(), err)
			}
			b := m.Bounds(prog.Stats())
			if exact.Cycles < b.Lower || exact.Cycles > b.Upper {
				t.Errorf("%s/%s: exact cycles %d outside bounds [%d, %d]",
					name, w.Name(), exact.Cycles, b.Lower, b.Upper)
			} else {
				t.Logf("%s/%s: %d in [%d, %d] (lower gap %.2fx)",
					name, w.Name(), exact.Cycles, b.Lower, b.Upper,
					float64(exact.Cycles)/float64(b.Lower))
			}
		}
	}
}
