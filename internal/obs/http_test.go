package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry(2)
	r.Counter("armdse_runs_total", "Runs.", L("app", "STREAM")).Add(0, 4)
	status := func() any { return map[string]int{"done": 4} }
	srv := httptest.NewServer(Handler(r, status))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, `armdse_runs_total{app="STREAM"} 4`) {
		t.Errorf("/metrics: code %d body %q", code, body)
	}

	code, body = get("/status")
	if code != http.StatusOK {
		t.Fatalf("/status: code %d", code)
	}
	var st map[string]int
	if err := json.Unmarshal([]byte(body), &st); err != nil || st["done"] != 4 {
		t.Errorf("/status body %q (err %v)", body, err)
	}

	code, body = get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars: code %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil || len(snap.Families) != 1 {
		t.Errorf("/debug/vars body %q (err %v)", body, err)
	}

	if code, _ = get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: code %d", code)
	}
	if code, _ = get("/"); code != http.StatusOK {
		t.Errorf("/: code %d", code)
	}
	if code, _ = get("/nope"); code != http.StatusNotFound {
		t.Errorf("/nope: code %d, want 404", code)
	}
}

func TestHandlerNilStatus(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(1), nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/status with nil fn: code %d, want 404", resp.StatusCode)
	}
}

func TestServeBindsAndServes(t *testing.T) {
	r := NewRegistry(1)
	srv, addr, err := Serve("127.0.0.1:0", Handler(r, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.Contains(addr, ":") || strings.HasSuffix(addr, ":0") {
		t.Fatalf("bound addr %q not resolved", addr)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics over Serve: code %d", resp.StatusCode)
	}
}

func TestJournal(t *testing.T) {
	path := t.TempDir() + "/run.jsonl"
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.WriteLine([]byte(`{"type":"meta"}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.WriteLine([]byte(`{"type":"summary"}`)); err != nil {
		t.Fatal(err)
	}
	lines, bytes := j.Stats()
	if lines != 2 || bytes != int64(len(`{"type":"meta"}`)+len(`{"type":"summary"}`)+2) {
		t.Errorf("stats = %d lines %d bytes", lines, bytes)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var nilJ *Journal
	if err := nilJ.WriteLine([]byte("x")); err != nil {
		t.Errorf("nil journal WriteLine: %v", err)
	}
	if err := nilJ.Close(); err != nil {
		t.Errorf("nil journal Close: %v", err)
	}
}
