package obs

import "sort"

// SeriesSnapshot is one (label set, value) observation of a family at
// snapshot time.
type SeriesSnapshot struct {
	// Labels is the series' sorted label set.
	Labels []Label `json:"labels,omitempty"`
	// Value carries the counter total or gauge value.
	Value float64 `json:"value"`
	// PerShard is the counter's per-shard breakdown (counters only) —
	// shard i is worker i's contribution.
	PerShard []int64 `json:"per_shard,omitempty"`
	// Buckets are the histogram's non-cumulative per-bucket counts
	// (histograms only); bucket bounds come from BucketUpperBound.
	Buckets []int64 `json:"buckets,omitempty"`
	// Count and Sum summarise the histogram's observations.
	Count int64 `json:"count,omitempty"`
	Sum   int64 `json:"sum,omitempty"`
}

// FamilySnapshot is one metric family with all its series.
type FamilySnapshot struct {
	Name string `json:"name"`
	Help string `json:"help,omitempty"`
	Kind string `json:"kind"`
	// Scale is the histogram family's exposition divisor (e.g. TimeScale for
	// nanosecond observations exposed as seconds); 0 means unscaled.
	Scale  float64          `json:"scale,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot is a deterministic point-in-time view of a registry: families
// sorted by name, series sorted by label identity, shards pre-aggregated.
// Two snapshots of identical recorded state encode byte-identically.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// Snapshot aggregates the registry. It takes the registration lock only to
// enumerate families; reading the shards races benignly with concurrent
// recording (each slot is an atomic load), which is exactly the live-monitor
// semantic: a snapshot is one consistent-enough view of a moving sweep.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := Snapshot{Families: make([]FamilySnapshot, 0, len(fams))}
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind.String(), Scale: f.scale}
		r.mu.Lock()
		ser := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			ser = append(ser, s)
		}
		r.mu.Unlock()
		sort.Slice(ser, func(i, j int) bool { return ser[i].lkey < ser[j].lkey })
		for _, s := range ser {
			ss := SeriesSnapshot{Labels: s.labels}
			switch f.kind {
			case KindCounter:
				ss.PerShard = make([]int64, len(s.c.sh))
				var t int64
				for i := range s.c.sh {
					ss.PerShard[i] = s.c.sh[i].v.Load()
					t += ss.PerShard[i]
				}
				ss.Value = float64(t)
			case KindGauge:
				ss.Value = s.g.Value()
			case KindHistogram:
				ss.Buckets = make([]int64, NumHistBuckets)
				for i := range s.h.sh {
					sh := &s.h.sh[i]
					for b := 0; b < NumHistBuckets; b++ {
						ss.Buckets[b] += sh.buckets[b].Load()
					}
					ss.Count += sh.count.Load()
					ss.Sum += sh.sum.Load()
				}
			}
			fs.Series = append(fs.Series, ss)
		}
		out.Families = append(out.Families, fs)
	}
	return out
}
