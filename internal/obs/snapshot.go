package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// SeriesSnapshot is one (label set, value) observation of a family at
// snapshot time.
type SeriesSnapshot struct {
	// Labels is the series' sorted label set.
	Labels []Label `json:"labels,omitempty"`
	// Value carries the counter total or gauge value.
	Value float64 `json:"value"`
	// PerShard is the counter's per-shard breakdown (counters only) —
	// shard i is worker i's contribution.
	PerShard []int64 `json:"per_shard,omitempty"`
	// Buckets are the histogram's non-cumulative per-bucket counts
	// (histograms only); bucket bounds come from BucketUpperBound.
	Buckets []int64 `json:"buckets,omitempty"`
	// Count and Sum summarise the histogram's observations.
	Count int64 `json:"count,omitempty"`
	Sum   int64 `json:"sum,omitempty"`
}

// FamilySnapshot is one metric family with all its series.
type FamilySnapshot struct {
	Name string `json:"name"`
	Help string `json:"help,omitempty"`
	Kind string `json:"kind"`
	// Scale is the histogram family's exposition divisor (e.g. TimeScale for
	// nanosecond observations exposed as seconds); 0 means unscaled.
	Scale  float64          `json:"scale,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot is a deterministic point-in-time view of a registry: families
// sorted by name, series sorted by label identity, shards pre-aggregated.
// Two snapshots of identical recorded state encode byte-identically.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// Encode renders the snapshot as canonical JSON. Snapshot ordering is
// deterministic (families by name, series by label identity) and floats
// encode via Go's shortest round-trip representation, so two snapshots of
// identical state encode byte-identically.
func (s Snapshot) Encode() ([]byte, error) {
	return json.Marshal(s)
}

// DecodeSnapshot parses JSON produced by Encode. Decoding follows the fabric
// wire-protocol style: unknown fields and trailing data are errors, and the
// result must pass Validate. Label sets are re-sorted so the decoded
// snapshot is canonical even when the input was hand-built.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Snapshot
	if err := dec.Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: decode snapshot: %w", err)
	}
	if dec.More() {
		return Snapshot{}, fmt.Errorf("obs: decode snapshot: trailing data after JSON value")
	}
	for fi := range s.Families {
		for si := range s.Families[fi].Series {
			sortLabels(s.Families[fi].Series[si].Labels)
		}
	}
	if err := s.Validate(); err != nil {
		return Snapshot{}, err
	}
	return s, nil
}

// sortLabels orders a label set by key then value — the canonical order the
// registry maintains for registered series.
func sortLabels(ls []Label) {
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].Key != ls[j].Key {
			return ls[i].Key < ls[j].Key
		}
		return ls[i].Value < ls[j].Value
	})
}

// Validate checks the structural invariants every registry-produced snapshot
// upholds: non-empty family names, known kinds, finite non-negative scales,
// bucket slices capped at NumHistBuckets, and non-negative bucket, count and
// per-shard tallies. It is the shared gate for snapshots arriving off the
// wire (DecodeSnapshot, fabric telemetry payloads).
func (s Snapshot) Validate() error {
	for _, f := range s.Families {
		if f.Name == "" {
			return fmt.Errorf("obs: snapshot family with empty name")
		}
		switch f.Kind {
		case KindCounter.String(), KindGauge.String(), KindHistogram.String():
		default:
			return fmt.Errorf("obs: snapshot family %s: unknown kind %q", f.Name, f.Kind)
		}
		if f.Scale < 0 || math.IsNaN(f.Scale) || math.IsInf(f.Scale, 0) {
			return fmt.Errorf("obs: snapshot family %s: invalid scale %v", f.Name, f.Scale)
		}
		for _, ser := range f.Series {
			for _, l := range ser.Labels {
				if l.Key == "" {
					return fmt.Errorf("obs: snapshot family %s: series with empty label key", f.Name)
				}
			}
			if len(ser.Buckets) > NumHistBuckets {
				return fmt.Errorf("obs: snapshot family %s: %d buckets exceeds %d", f.Name, len(ser.Buckets), NumHistBuckets)
			}
			if ser.Count < 0 {
				return fmt.Errorf("obs: snapshot family %s: negative count %d", f.Name, ser.Count)
			}
			for _, n := range ser.Buckets {
				if n < 0 {
					return fmt.Errorf("obs: snapshot family %s: negative bucket count %d", f.Name, n)
				}
			}
			for _, n := range ser.PerShard {
				if n < 0 {
					return fmt.Errorf("obs: snapshot family %s: negative per-shard count %d", f.Name, n)
				}
			}
		}
	}
	return nil
}

// Snapshot aggregates the registry. It takes the registration lock only to
// enumerate families; reading the shards races benignly with concurrent
// recording (each slot is an atomic load), which is exactly the live-monitor
// semantic: a snapshot is one consistent-enough view of a moving sweep.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := Snapshot{Families: make([]FamilySnapshot, 0, len(fams))}
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind.String(), Scale: f.scale}
		r.mu.Lock()
		ser := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			ser = append(ser, s)
		}
		r.mu.Unlock()
		sort.Slice(ser, func(i, j int) bool { return ser[i].lkey < ser[j].lkey })
		for _, s := range ser {
			ss := SeriesSnapshot{Labels: s.labels}
			switch f.kind {
			case KindCounter:
				ss.PerShard = make([]int64, len(s.c.sh))
				var t int64
				for i := range s.c.sh {
					ss.PerShard[i] = s.c.sh[i].v.Load()
					t += ss.PerShard[i]
				}
				ss.Value = float64(t)
			case KindGauge:
				ss.Value = s.g.Value()
			case KindHistogram:
				ss.Buckets = make([]int64, NumHistBuckets)
				for i := range s.h.sh {
					sh := &s.h.sh[i]
					for b := 0; b < NumHistBuckets; b++ {
						ss.Buckets[b] += sh.buckets[b].Load()
					}
					ss.Count += sh.count.Load()
					ss.Sum += sh.sum.Load()
				}
			}
			fs.Series = append(fs.Series, ss)
		}
		out.Families = append(out.Families, fs)
	}
	return out
}
