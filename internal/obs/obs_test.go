package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterShardingAndTotals(t *testing.T) {
	r := NewRegistry(4)
	c := r.Counter("runs_total", "runs")
	if got := c.NumShards(); got != 4 {
		t.Fatalf("NumShards = %d, want 4", got)
	}
	c.Add(0, 3)
	c.Inc(1)
	c.Inc(1)
	c.Add(3, 10)
	if got := c.Value(); got != 15 {
		t.Errorf("Value = %d, want 15", got)
	}
	if got := c.ShardValue(1); got != 2 {
		t.Errorf("ShardValue(1) = %d, want 2", got)
	}
	// Shard indices mask, so out-of-range workers wrap instead of panicking.
	c.Inc(4)
	if got := c.ShardValue(0); got != 4 {
		t.Errorf("ShardValue(0) after wrap = %d, want 4", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry(8)
	c := r.Counter("concurrent_total", "")
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc(w)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != 8*perWorker {
		t.Errorf("Value = %d, want %d", got, 8*perWorker)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned non-nil handles")
	}
	// None of these may panic.
	c.Add(0, 1)
	c.Inc(3)
	g.Set(1.5)
	g.SetInt(7)
	h.Observe(0, 42)
	sp := h.Start(2)
	sp.End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles reported non-zero values")
	}
	if c.NumShards() != 0 || c.ShardValue(5) != 0 {
		t.Error("nil counter shard accessors non-zero")
	}
	if r.NumShards() != 1 {
		t.Error("nil registry NumShards != 1")
	}
	if snap := r.Snapshot(); len(snap.Families) != 0 {
		t.Error("nil registry snapshot non-empty")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry(1)
	g := r.Gauge("eta_seconds", "")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("Value = %g, want 2.5", got)
	}
	g.SetInt(-3)
	if got := g.Value(); got != -3 {
		t.Errorf("Value = %g, want -3", got)
	}
}

func TestRegistryShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {7, 8}, {8, 8}, {9, 16},
	} {
		if got := NewRegistry(tc.in).NumShards(); got != tc.want {
			t.Errorf("NewRegistry(%d).NumShards = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRegistryReusesSeries(t *testing.T) {
	r := NewRegistry(2)
	a := r.Counter("m", "", L("app", "STREAM"))
	b := r.Counter("m", "", L("app", "STREAM"))
	if a != b {
		t.Error("same (name, labels) returned distinct counters")
	}
	other := r.Counter("m", "", L("app", "TeaLeaf"))
	if a == other {
		t.Error("distinct label values conflated")
	}
	// Label order must not matter for series identity.
	x := r.Counter("multi", "", L("b", "2"), L("a", "1"))
	y := r.Counter("multi", "", L("a", "1"), L("b", "2"))
	if x != y {
		t.Error("label order changed series identity")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry(1)
	r.Counter("clash", "")
	defer func() {
		if recover() == nil {
			t.Error("kind conflict did not panic")
		}
	}()
	r.Gauge("clash", "")
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// Exhaustive around every power-of-two edge: v = 2^(k-1) is the first
	// value of bucket k, v = 2^k - 1 the last.
	for _, tc := range []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0}, {-1, 0}, {0, 0},
		{1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{255, 8}, {256, 9},
		{1 << 61, 62}, {1<<62 - 1, 62},
		{1 << 62, 63}, {math.MaxInt64, 63},
	} {
		if got := bucketOf(tc.v); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	// Every positive value lands in the bucket whose bound bracket it.
	for k := 1; k < NumHistBuckets-1; k++ {
		lo := int64(1) << (k - 1)
		if got := bucketOf(lo); got != k {
			t.Errorf("bucketOf(2^%d) = %d, want %d", k-1, got, k)
		}
		hi := int64(1)<<k - 1
		if got := bucketOf(hi); got != k {
			t.Errorf("bucketOf(2^%d-1) = %d, want %d", k, got, k)
		}
	}
}

func TestBucketUpperBound(t *testing.T) {
	if got := BucketUpperBound(0); got != 0 {
		t.Errorf("BucketUpperBound(0) = %g, want 0", got)
	}
	if got := BucketUpperBound(3); got != 7 {
		t.Errorf("BucketUpperBound(3) = %g, want 7", got)
	}
	if got := BucketUpperBound(NumHistBuckets - 1); !math.IsInf(got, 1) {
		t.Errorf("BucketUpperBound(last) = %g, want +Inf", got)
	}
	// Bounds are consistent with bucketOf: every bucket's upper bound maps
	// back into that bucket. Beyond 2^53 the bound 2^k-1 is no longer exactly
	// representable as float64, so the round-trip only holds below that.
	for k := 1; k <= 53; k++ {
		ub := BucketUpperBound(k)
		if got := bucketOf(int64(ub)); got != k {
			t.Errorf("bucketOf(BucketUpperBound(%d)=%g) = %d", k, ub, got)
		}
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	r := NewRegistry(2)
	h := r.Histogram("lat", "")
	h.Observe(0, 1)   // bucket 1
	h.Observe(1, 5)   // bucket 3
	h.Observe(0, 5)   // bucket 3, other shard
	h.Observe(1, 0)   // bucket 0
	h.Observe(0, -10) // bucket 0
	if got := h.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	if got := h.Sum(); got != 1 {
		t.Errorf("Sum = %d, want 1", got)
	}
	snap := r.Snapshot()
	if len(snap.Families) != 1 || len(snap.Families[0].Series) != 1 {
		t.Fatalf("snapshot shape: %+v", snap)
	}
	s := snap.Families[0].Series[0]
	if s.Buckets[0] != 2 || s.Buckets[1] != 1 || s.Buckets[3] != 2 {
		t.Errorf("buckets = %v", s.Buckets[:8])
	}
	if s.Count != 5 || s.Sum != 1 {
		t.Errorf("count/sum = %d/%d", s.Count, s.Sum)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry(2)
		// Register in an order unlike the sorted one.
		r.Counter("zzz_total", "", L("app", "b"))
		r.Counter("zzz_total", "", L("app", "a"))
		r.Gauge("mmm", "")
		r.Histogram("aaa_ns", "")
		r.Counter("zzz_total", "", L("app", "c")).Add(1, 7)
		return r
	}
	snap := build().Snapshot()
	if len(snap.Families) != 3 {
		t.Fatalf("families = %d", len(snap.Families))
	}
	wantNames := []string{"aaa_ns", "mmm", "zzz_total"}
	for i, f := range snap.Families {
		if f.Name != wantNames[i] {
			t.Errorf("family[%d] = %s, want %s", i, f.Name, wantNames[i])
		}
	}
	apps := snap.Families[2].Series
	if len(apps) != 3 || apps[0].Labels[0].Value != "a" || apps[2].Labels[0].Value != "c" {
		t.Errorf("series order: %+v", apps)
	}
	if apps[2].Value != 7 || apps[2].PerShard[1] != 7 {
		t.Errorf("series value/per-shard: %+v", apps[2])
	}
}
