package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler builds the telemetry HTTP mux:
//
//	/metrics      Prometheus text exposition of the registry
//	/status       JSON of the caller's status function (sweep ETA, per-shard
//	              progress, slowest configs — whatever the caller exposes)
//	/debug/vars   full registry snapshot as JSON
//	/debug/pprof  the standard net/http/pprof profiling endpoints
//
// status may be nil, in which case /status answers 404. The handler is
// read-only: nothing served here mutates the registry.
func Handler(reg *Registry, status func() any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, reg.Snapshot())
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		if status == nil {
			http.NotFound(w, nil)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(status())
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = WriteJSON(w, reg.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("armdse telemetry\n\n/metrics\n/status\n/debug/vars\n/debug/pprof/\n"))
	})
	return mux
}

// Serve binds addr (e.g. ":8080" or "127.0.0.1:0") and serves the handler
// in a background goroutine. It returns the server (for Shutdown/Close) and
// the bound address, which resolves ":0" to the kernel-assigned port.
func Serve(addr string, h http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
