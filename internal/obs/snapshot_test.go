package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	snap := workerReg(t, 1)
	enc, err := snap.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(normalizeEmpty(snap), normalizeEmpty(dec)) {
		t.Fatalf("round trip changed snapshot:\n got %+v\nwant %+v", dec, snap)
	}
	enc2, err := dec.Encode()
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("re-encode differs:\n got %s\nwant %s", enc2, enc)
	}
}

// normalizeEmpty maps nil and empty slices onto one form: json round-trips
// turn empty slices into nil, which DeepEqual would otherwise flag.
func normalizeEmpty(s Snapshot) Snapshot {
	for fi := range s.Families {
		for si := range s.Families[fi].Series {
			ser := &s.Families[fi].Series[si]
			if len(ser.Labels) == 0 {
				ser.Labels = nil
			}
			if len(ser.PerShard) == 0 {
				ser.PerShard = nil
			}
			if len(ser.Buckets) == 0 {
				ser.Buckets = nil
			}
		}
	}
	return s
}

func TestDecodeSnapshotRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":    `{"families":[],"extra":1}`,
		"trailing data":    `{"families":[]} {"families":[]}`,
		"bad kind":         `{"families":[{"name":"m","kind":"elephant","series":[]}]}`,
		"empty name":       `{"families":[{"name":"","kind":"counter","series":[]}]}`,
		"negative bucket":  `{"families":[{"name":"h","kind":"histogram","series":[{"buckets":[-1]}]}]}`,
		"negative count":   `{"families":[{"name":"h","kind":"histogram","series":[{"count":-1}]}]}`,
		"too many buckets": `{"families":[{"name":"h","kind":"histogram","series":[{"buckets":[` + strings.Repeat("0,", NumHistBuckets) + `0]}]}]}`,
		"negative scale":   `{"families":[{"name":"h","kind":"histogram","scale":-1,"series":[]}]}`,
		"empty label key":  `{"families":[{"name":"m","kind":"gauge","series":[{"labels":[{"key":"","value":"x"}],"value":1}]}]}`,
		"not json":         `}{`,
	}
	for name, in := range cases {
		if _, err := DecodeSnapshot([]byte(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestDecodeSnapshotSortsLabels(t *testing.T) {
	in := `{"families":[{"name":"m","kind":"gauge","series":[{"labels":[{"key":"z","value":"1"},{"key":"a","value":"2"}],"value":3}]}]}`
	s, err := DecodeSnapshot([]byte(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	ls := s.Families[0].Series[0].Labels
	if ls[0].Key != "a" || ls[1].Key != "z" {
		t.Fatalf("labels not canonicalised: %+v", ls)
	}
}

func FuzzSnapshotRoundTrip(f *testing.F) {
	r := NewRegistry(2)
	r.Counter("armdse_runs_total", "runs", L("app", "STREAM")).Add(0, 7)
	r.Gauge("armdse_eta_seconds", "eta").Set(1.5)
	r.TimeHistogram("armdse_wall_nanoseconds", "wall").Observe(1, 12345)
	seed, err := r.Snapshot().Encode()
	if err != nil {
		f.Fatalf("seed encode: %v", err)
	}
	f.Add(seed)
	f.Add([]byte(`{"families":[]}`))
	f.Add([]byte(`{"families":[{"name":"m","kind":"histogram","scale":1e9,"series":[{"buckets":[0,2,1],"count":3,"sum":9}]}]}`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return // malformed inputs only need to be rejected cleanly
		}
		enc1, err := s.Encode()
		if err != nil {
			t.Fatalf("encode of decoded snapshot failed: %v", err)
		}
		s2, err := DecodeSnapshot(enc1)
		if err != nil {
			t.Fatalf("decode of canonical encode failed: %v\n%s", err, enc1)
		}
		enc2, err := s2.Encode()
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonical encode not a fixed point:\n%s\n%s", enc1, enc2)
		}
	})
}
