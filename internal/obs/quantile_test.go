package obs

import (
	"math"
	"testing"
)

func TestBucketLowerBound(t *testing.T) {
	if got := BucketLowerBound(0); got != 0 {
		t.Fatalf("bucket 0 lower = %v, want 0", got)
	}
	for i := 1; i < NumHistBuckets; i++ {
		want := math.Pow(2, float64(i-1))
		if got := BucketLowerBound(i); got != want {
			t.Fatalf("bucket %d lower = %v, want %v", i, got, want)
		}
	}
	// Lower bound and upper bound agree on the bucket geometry: bucket i's
	// inclusive integer upper bound 2^i - 1 sits just under bucket i+1's
	// lower bound 2^i.
	for i := 1; i < NumHistBuckets-2; i++ {
		if BucketUpperBound(i)+1 != BucketLowerBound(i+1) {
			t.Fatalf("bucket %d: upper %v and next lower %v disagree", i, BucketUpperBound(i), BucketLowerBound(i+1))
		}
	}
}

// TestQuantileBucketEdges pins the interpolation at exact bucket edges: a
// rank landing precisely on a bucket's cumulative count must yield exactly
// that bucket's continuous upper bound 2^k, q=0 the first occupied bucket's
// lower bound, and q=1 the last occupied bucket's upper bound.
func TestQuantileBucketEdges(t *testing.T) {
	buckets := make([]int64, NumHistBuckets)
	buckets[3] = 5 // values in [4, 8)
	buckets[4] = 5 // values in [8, 16)

	cases := []struct {
		q    float64
		want float64
	}{
		{0, 4},      // lower edge of first occupied bucket
		{0.5, 8},    // rank 5 == cumulative count of bucket 3: exactly its upper bound
		{1, 16},     // upper edge of last occupied bucket
		{0.25, 6},   // rank 2.5, halfway through bucket 3: 4 + 4*(2.5/5)
		{0.75, 12},  // rank 7.5, halfway through bucket 4: 8 + 8*(2.5/5)
		{-0.5, 4},   // q clamps to 0
		{1.5, 16},   // q clamps to 1
		{0.1, 4.8},  // rank 1: 4 + 4*(1/5)
		{0.9, 14.4}, // rank 9: 8 + 8*(4/5)
	}
	for _, c := range cases {
		if got := QuantileFromBuckets(buckets, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("q=%v: got %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileDegenerateShapes(t *testing.T) {
	if got := QuantileFromBuckets(nil, 0.5); got != 0 {
		t.Fatalf("empty distribution: got %v, want 0", got)
	}
	zeroes := make([]int64, NumHistBuckets)
	if got := QuantileFromBuckets(zeroes, 0.99); got != 0 {
		t.Fatalf("all-zero distribution: got %v, want 0", got)
	}
	// Bucket 0 holds non-positive observations and always estimates 0.
	b := make([]int64, NumHistBuckets)
	b[0] = 10
	if got := QuantileFromBuckets(b, 1); got != 0 {
		t.Fatalf("bucket-0 distribution: got %v, want 0", got)
	}
	// The open-ended final bucket clamps to its lower bound 2^62.
	b = make([]int64, NumHistBuckets)
	b[NumHistBuckets-1] = 3
	want := math.Pow(2, float64(NumHistBuckets-2))
	if got := QuantileFromBuckets(b, 0.5); got != want {
		t.Fatalf("+Inf bucket: got %v, want %v", got, want)
	}
	// Negative counts (impossible from a registry, possible off the wire
	// before validation) are ignored rather than corrupting ranks.
	b = make([]int64, NumHistBuckets)
	b[2] = -5
	b[3] = 4
	if got := QuantileFromBuckets(b, 1); got != 8 {
		t.Fatalf("negative bucket ignored: got %v, want 8", got)
	}
}

func TestHistogramQuantileAndSummary(t *testing.T) {
	r := NewRegistry(2)
	h := r.Histogram("lat", "latency")
	// 10 observations in [16, 32): bucket 5.
	for i := 0; i < 10; i++ {
		h.Observe(i, 20)
	}
	if got := h.Quantile(0); got != 16 {
		t.Fatalf("q0 = %v, want 16", got)
	}
	if got := h.Quantile(1); got != 32 {
		t.Fatalf("q1 = %v, want 32", got)
	}
	s := SummaryFromBuckets(snapshotBuckets(t, r, "lat"))
	if s.P50 != 16+16*0.5 || s.P90 != 16+16*0.9 || s.P99 != 16+16*0.99 {
		t.Fatalf("summary = %+v", s)
	}
	if (&Histogram{}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile != 0")
	}
}

func snapshotBuckets(t *testing.T, r *Registry, family string) []int64 {
	t.Helper()
	for _, f := range r.Snapshot().Families {
		if f.Name == family {
			return f.Series[0].Buckets
		}
	}
	t.Fatalf("family %s not found", family)
	return nil
}

func TestSnapshotQuantilesScaled(t *testing.T) {
	r := NewRegistry(1)
	h := r.TimeHistogram("armdse_config_wall_nanoseconds", "wall", L("phase", "sim"))
	// 4 observations of ~2^30 ns (~1.07 s): all in bucket 31 [2^30, 2^31).
	for i := 0; i < 4; i++ {
		h.Observe(0, 1<<30)
	}
	r.Counter("armdse_runs_total", "runs").Inc(0)

	qs := SnapshotQuantiles(r.Snapshot())
	if _, ok := qs["armdse_runs_total"]; ok {
		t.Fatal("counter family leaked into quantile map")
	}
	series := qs["armdse_config_wall_nanoseconds"]
	if len(series) != 1 {
		t.Fatalf("series = %d, want 1", len(series))
	}
	sq := series[0]
	if sq.Count != 4 {
		t.Fatalf("count = %d, want 4", sq.Count)
	}
	if want := float64(1<<30) / TimeScale; sq.Mean != want {
		t.Fatalf("mean = %v, want %v", sq.Mean, want)
	}
	// All mass in one bucket: p50 halfway through [2^30, 2^31), in seconds.
	if want := (1 << 30) * 1.5 / TimeScale; math.Abs(sq.Quantiles.P50-want) > 1e-9 {
		t.Fatalf("p50 = %v, want %v", sq.Quantiles.P50, want)
	}
	if len(sq.Labels) != 1 || sq.Labels[0].Key != "phase" {
		t.Fatalf("labels = %+v", sq.Labels)
	}
}
