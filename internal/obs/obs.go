// Package obs is the toolkit's stdlib-only telemetry core: per-worker-sharded
// atomic counters and gauges, log-bucketed histograms, cheap span timing, and
// deterministic snapshots with Prometheus text-exposition and JSON encoders.
//
// The design contract mirrors the engine's zero-allocation hot path: every
// metric pre-sizes its shards at registration, recording is a handful of
// atomic adds into the caller's own shard (no locks, no allocation, no
// cross-worker cache-line traffic), and all aggregation — summing shards,
// sorting families, cumulating histogram buckets — happens only at snapshot
// time. Instrumentation is purely observational: nothing in this package
// feeds back into simulation, so enabling it cannot perturb dataset output.
//
// Handles are nil-safe: a nil *Registry returns nil *Counter/*Gauge/
// *Histogram handles, and recording into a nil handle is a no-op — callers
// thread one optional registry through the stack without guarding every
// record site.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Kind discriminates the metric families a Registry holds.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a last-write-wins instantaneous value.
	KindGauge
	// KindHistogram is a log-bucketed value distribution.
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one metric dimension (e.g. {app="STREAM"}). Label names are
// sanitised at registration; values are escaped at exposition time, so any
// string is safe as a value.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// cslot is one counter shard, padded to a cache line so concurrent workers
// never contend on neighbouring shards.
type cslot struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a sharded monotonic counter handle. Add and Inc are safe for
// concurrent use from any goroutine; passing each worker its own shard index
// keeps the hot path contention-free.
type Counter struct {
	sh   []cslot
	mask int
}

// Add adds delta to the shard's slot. Nil-safe no-op.
func (c *Counter) Add(shard int, delta int64) {
	if c == nil {
		return
	}
	c.sh[shard&c.mask].v.Add(delta)
}

// Inc adds one to the shard's slot. Nil-safe no-op.
func (c *Counter) Inc(shard int) { c.Add(shard, 1) }

// Value returns the counter's total across all shards.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var t int64
	for i := range c.sh {
		t += c.sh[i].v.Load()
	}
	return t
}

// ShardValue returns the count recorded into one shard slot — the per-worker
// breakdown behind a sweep monitor's per-shard progress view.
func (c *Counter) ShardValue(shard int) int64 {
	if c == nil {
		return 0
	}
	return c.sh[shard&c.mask].v.Load()
}

// NumShards returns the counter's shard count (a power of two).
func (c *Counter) NumShards() int {
	if c == nil {
		return 0
	}
	return len(c.sh)
}

// Gauge is an instantaneous float64 value with a single atomic slot: gauges
// are not additive across workers, so they are unsharded and last-write-wins.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Nil-safe no-op.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(v))
}

// SetInt stores an integral value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return floatFromBits(g.bits.Load())
}

// series is one registered (family, label set) pair and its storage.
type series struct {
	labels []Label
	lkey   string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all series sharing a metric name; a name has exactly one
// kind, help string and (for histograms) exposition scale.
type family struct {
	name   string
	help   string
	kind   Kind
	scale  float64 // histogram exposition divisor; 0 means unscaled
	series map[string]*series
}

// Registry holds the process's metric families. One registry serves one
// collection run; shard count is fixed at construction (rounded up to a
// power of two) so every handle masks its shard index instead of bounds
// checking.
type Registry struct {
	shards int
	mask   int
	mu     sync.Mutex
	fams   map[string]*family
}

// NewRegistry builds a registry whose sharded metrics carry at least the
// given number of shards (minimum 1, rounded up to a power of two). Pass the
// worker-pool size so each worker gets a private slot.
func NewRegistry(shards int) *Registry {
	n := 1
	for n < shards {
		n <<= 1
	}
	return &Registry{shards: n, mask: n - 1, fams: make(map[string]*family)}
}

// NumShards returns the registry's shard count.
func (r *Registry) NumShards() int {
	if r == nil {
		return 1
	}
	return r.shards
}

// lookup resolves (or creates) the series for (name, labels) under kind.
// Metric names and label keys are sanitised; registering one name under two
// kinds (or two histogram scales) panics — that is a programming error, not
// runtime input.
func (r *Registry) lookup(name, help string, kind Kind, scale float64, labels []Label) *series {
	name = SanitizeMetricName(name)
	ls := make([]Label, len(labels))
	for i, l := range labels {
		ls[i] = Label{Key: SanitizeLabelName(l.Key), Value: l.Value}
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	lkey := labelKey(ls)

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, scale: scale, series: make(map[string]*series)}
		r.fams[name] = f
	}
	if f.kind != kind {
		panic("obs: metric " + name + " registered as both " + f.kind.String() + " and " + kind.String())
	}
	if f.scale != scale {
		panic("obs: histogram " + name + " registered with two exposition scales")
	}
	s := f.series[lkey]
	if s == nil {
		s = &series{labels: ls, lkey: lkey}
		switch kind {
		case KindCounter:
			s.c = &Counter{sh: make([]cslot, r.shards), mask: r.mask}
		case KindGauge:
			s.g = &Gauge{}
		case KindHistogram:
			s.h = &Histogram{sh: make([]hshard, r.shards), mask: r.mask}
		}
		f.series[lkey] = s
	}
	return s
}

// Counter registers (or returns the existing) sharded counter for the name
// and label set. Nil-safe: a nil registry returns a nil handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindCounter, 0, labels).c
}

// Gauge registers (or returns the existing) gauge for the name and label set.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindGauge, 0, labels).g
}

// Histogram registers (or returns the existing) log-bucketed histogram for
// the name and label set.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindHistogram, 0, labels).h
}

// TimeScale is the exposition divisor of a TimeHistogram: observations go in
// as integer nanoseconds, the exposition comes out in seconds.
const TimeScale = 1e9

// TimeHistogram registers a histogram that observes integer nanoseconds on
// the hot path but exposes seconds — the Prometheus base unit for time — by
// dividing bucket bounds and the sum by TimeScale at exposition. Storage and
// recording are identical to Histogram (three atomic adds, no float math);
// only the snapshot's Scale and the rendered `le`/`_sum` values differ.
func (r *Registry) TimeHistogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindHistogram, TimeScale, labels).h
}

// labelKey encodes a sorted label set as the series identity string.
func labelKey(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	n := 0
	for _, l := range ls {
		n += len(l.Key) + len(l.Value) + 2
	}
	b := make([]byte, 0, n)
	for _, l := range ls {
		b = append(b, l.Key...)
		b = append(b, 1)
		b = append(b, l.Value...)
		b = append(b, 2)
	}
	return string(b)
}
