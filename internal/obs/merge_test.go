package obs

import (
	"bytes"
	"testing"
)

// workerReg builds a small registry standing in for one fleet worker, with
// per-worker-distinct values so merge arithmetic is checkable.
func workerReg(t *testing.T, id int) Snapshot {
	t.Helper()
	r := NewRegistry(2)
	c := r.Counter("armdse_runs_total", "runs", L("app", "STREAM"))
	c.Add(0, int64(10*(id+1)))
	c.Add(1, 1)
	r.Gauge("armdse_inflight", "in flight").Set(float64(id + 1))
	h := r.TimeHistogram("armdse_config_wall_nanoseconds", "wall")
	for i := 0; i <= id; i++ {
		h.Observe(0, int64(1000*(i+1)))
	}
	return r.Snapshot()
}

func TestMergeSnapshotsSemantics(t *testing.T) {
	snaps := []WorkerSnapshot{
		{Worker: "w0", Snap: workerReg(t, 0)},
		{Worker: "w1", Snap: workerReg(t, 1)},
	}
	merged, err := MergeSnapshots(snaps)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	byName := map[string]FamilySnapshot{}
	for _, f := range merged.Families {
		byName[f.Name] = f
	}

	runs := byName["armdse_runs_total"]
	if len(runs.Series) != 3 {
		t.Fatalf("runs series = %d, want 3 (merged + 2 workers)", len(runs.Series))
	}
	// Merged series has the base labels only and the summed total; worker
	// series carry worker labels and raw per-shard breakdowns.
	var mergedTotal float64
	var workerSeries int
	for _, s := range runs.Series {
		hasWorker := false
		for _, l := range s.Labels {
			if l.Key == "worker" {
				hasWorker = true
			}
		}
		if hasWorker {
			workerSeries++
			if len(s.PerShard) == 0 {
				t.Errorf("worker series lost PerShard: %+v", s)
			}
		} else {
			mergedTotal = s.Value
			if len(s.PerShard) != 0 {
				t.Errorf("merged series kept PerShard: %+v", s)
			}
		}
	}
	if workerSeries != 2 {
		t.Fatalf("worker series = %d, want 2", workerSeries)
	}
	if mergedTotal != 11+21 {
		t.Fatalf("merged counter = %v, want 32", mergedTotal)
	}

	gauge := byName["armdse_inflight"]
	var gaugeMerged float64
	for _, s := range gauge.Series {
		if len(s.Labels) == 0 {
			gaugeMerged = s.Value
		}
	}
	if gaugeMerged != 1+2 {
		t.Fatalf("merged gauge = %v, want 3", gaugeMerged)
	}

	hist := byName["armdse_config_wall_nanoseconds"]
	if hist.Scale != TimeScale {
		t.Fatalf("merged histogram scale = %v, want %v", hist.Scale, TimeScale)
	}
	for _, s := range hist.Series {
		if len(s.Labels) == 0 && s.Count != 3 {
			t.Fatalf("merged histogram count = %d, want 3", s.Count)
		}
	}
}

func TestMergeSnapshotsReplacesWorkerLabel(t *testing.T) {
	in := Snapshot{Families: []FamilySnapshot{{
		Name: "m", Kind: "counter",
		Series: []SeriesSnapshot{{Labels: []Label{L("worker", "stale"), L("app", "a")}, Value: 4}},
	}}}
	merged, err := MergeSnapshots([]WorkerSnapshot{{Worker: "fresh", Snap: in}})
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	for _, s := range merged.Families[0].Series {
		for _, l := range s.Labels {
			if l.Key == "worker" && l.Value != "fresh" {
				t.Fatalf("stale worker label survived: %+v", s.Labels)
			}
		}
	}
}

func TestMergeSnapshotsErrors(t *testing.T) {
	a := workerReg(t, 0)
	if _, err := MergeSnapshots([]WorkerSnapshot{{Worker: "w", Snap: a}, {Worker: "w", Snap: a}}); err == nil {
		t.Fatal("duplicate worker accepted")
	}
	kindA := Snapshot{Families: []FamilySnapshot{{Name: "m", Kind: "counter", Series: []SeriesSnapshot{{Value: 1}}}}}
	kindB := Snapshot{Families: []FamilySnapshot{{Name: "m", Kind: "gauge", Series: []SeriesSnapshot{{Value: 1}}}}}
	if _, err := MergeSnapshots([]WorkerSnapshot{{Worker: "a", Snap: kindA}, {Worker: "b", Snap: kindB}}); err == nil {
		t.Fatal("kind conflict accepted")
	}
	scaleA := Snapshot{Families: []FamilySnapshot{{Name: "h", Kind: "histogram", Scale: TimeScale}}}
	scaleB := Snapshot{Families: []FamilySnapshot{{Name: "h", Kind: "histogram"}}}
	if _, err := MergeSnapshots([]WorkerSnapshot{{Worker: "a", Snap: scaleA}, {Worker: "b", Snap: scaleB}}); err == nil {
		t.Fatal("scale conflict accepted")
	}
	bad := Snapshot{Families: []FamilySnapshot{{Name: "m", Kind: "elephant"}}}
	if _, err := MergeSnapshots([]WorkerSnapshot{{Worker: "a", Snap: bad}}); err == nil {
		t.Fatal("invalid snapshot accepted")
	}
}

// permute invokes fn with every permutation of idx (Heap's algorithm).
func permute(idx []int, fn func([]int)) {
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			fn(idx)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				idx[i], idx[k-1] = idx[k-1], idx[i]
			} else {
				idx[0], idx[k-1] = idx[k-1], idx[0]
			}
		}
	}
	rec(len(idx))
}

func TestMergeSnapshotsPermutationByteIdentical(t *testing.T) {
	workers := []WorkerSnapshot{
		{Worker: "w2", Snap: workerReg(t, 2)},
		{Worker: "w0", Snap: workerReg(t, 0)},
		{Worker: "w3", Snap: workerReg(t, 3)},
		{Worker: "w1", Snap: workerReg(t, 1)},
	}
	ref, err := MergeSnapshots(workers)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	refBytes, err := ref.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	perms := 0
	permute([]int{0, 1, 2, 3}, func(idx []int) {
		perms++
		shuffled := make([]WorkerSnapshot, len(idx))
		for i, j := range idx {
			shuffled[i] = workers[j]
		}
		m, err := MergeSnapshots(shuffled)
		if err != nil {
			t.Fatalf("merge perm %v: %v", idx, err)
		}
		b, err := m.Encode()
		if err != nil {
			t.Fatalf("encode perm %v: %v", idx, err)
		}
		if !bytes.Equal(b, refBytes) {
			t.Fatalf("permutation %v produced different bytes", idx)
		}
	})
	if perms != 24 {
		t.Fatalf("visited %d permutations, want 24", perms)
	}
}
