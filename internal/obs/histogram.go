package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumHistBuckets is the fixed bucket count of every histogram: bucket 0
// holds non-positive values, bucket k (1..62) holds values in
// [2^(k-1), 2^k), and the final bucket holds everything from 2^62 up —
// the +Inf bucket of the Prometheus exposition. Power-of-two bucketing
// turns Observe into one bits.Len64, which keeps the hot path at three
// atomic adds with no float math.
const NumHistBuckets = 64

// hshard is one histogram shard: per-bucket counts plus count/sum, owned by
// one worker on the hot path and only read across workers at snapshot time.
type hshard struct {
	buckets [NumHistBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Histogram is a sharded log-bucketed distribution of int64 observations
// (typically nanoseconds or cycles).
type Histogram struct {
	sh   []hshard
	mask int
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	k := bits.Len64(uint64(v))
	if k >= NumHistBuckets {
		return NumHistBuckets - 1
	}
	return k
}

// BucketUpperBound returns bucket i's inclusive upper bound: 0 for bucket 0,
// 2^i - 1 for the middle buckets, and +Inf for the final bucket. These are
// the `le` values of the Prometheus exposition.
func BucketUpperBound(i int) float64 {
	switch {
	case i <= 0:
		return 0
	case i >= NumHistBuckets-1:
		return math.Inf(1)
	default:
		return float64(uint64(1)<<i - 1)
	}
}

// BucketLowerBound returns bucket i's inclusive lower bound: 0 for bucket 0
// and 2^(i-1) for every later bucket. The final bucket is open-ended above
// its lower bound 2^62.
func BucketLowerBound(i int) float64 {
	if i <= 0 {
		return 0
	}
	if i > NumHistBuckets-1 {
		i = NumHistBuckets - 1
	}
	return float64(uint64(1) << (i - 1))
}

// QuantileFromBuckets estimates the q-quantile (clamped to [0, 1]) of a
// log2-bucketed distribution by linear interpolation inside the bucket that
// holds the target rank, treating bucket k as the continuous interval
// [2^(k-1), 2^k). The interpolation pins exactly at bucket edges: a rank
// landing precisely on a bucket's cumulative count yields that bucket's
// continuous upper bound 2^k, and q=0 yields the first occupied bucket's
// lower bound. Bucket 0 (non-positive observations) always estimates 0, and
// a rank in the open-ended final bucket clamps to its lower bound 2^62.
// Returns 0 for an empty distribution.
func QuantileFromBuckets(buckets []int64, q float64) float64 {
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	var total int64
	for _, n := range buckets {
		if n > 0 {
			total += n
		}
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, n := range buckets {
		if n <= 0 {
			continue
		}
		cum += n
		if float64(cum) < rank {
			continue
		}
		if i == 0 {
			return 0
		}
		lo := BucketLowerBound(i)
		if i >= NumHistBuckets-1 {
			return lo
		}
		frac := (rank - float64(cum-n)) / float64(n)
		if frac < 0 {
			frac = 0
		}
		return lo + lo*frac
	}
	return BucketLowerBound(len(buckets) - 1)
}

// QuantileSummary is the standard p50/p90/p99 triplet of a distribution.
type QuantileSummary struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
}

// SummaryFromBuckets estimates the standard quantile triplet from raw
// (non-cumulative) bucket counts.
func SummaryFromBuckets(buckets []int64) QuantileSummary {
	return QuantileSummary{
		P50: QuantileFromBuckets(buckets, 0.50),
		P90: QuantileFromBuckets(buckets, 0.90),
		P99: QuantileFromBuckets(buckets, 0.99),
	}
}

// SeriesQuantiles summarises one histogram series for /status payloads.
type SeriesQuantiles struct {
	Labels    []Label         `json:"labels,omitempty"`
	Count     int64           `json:"count"`
	Mean      float64         `json:"mean"`
	Quantiles QuantileSummary `json:"quantiles"`
}

// SnapshotQuantiles extracts a quantile summary for every histogram series
// in the snapshot, keyed by family name. Estimates and means are divided by
// the family's exposition scale, so TimeHistogram families report seconds.
func SnapshotQuantiles(snap Snapshot) map[string][]SeriesQuantiles {
	out := make(map[string][]SeriesQuantiles)
	for _, f := range snap.Families {
		if f.Kind != KindHistogram.String() {
			continue
		}
		scale := f.Scale
		if scale <= 0 {
			scale = 1
		}
		for _, s := range f.Series {
			sq := SeriesQuantiles{Labels: s.Labels, Count: s.Count}
			if s.Count > 0 {
				sq.Mean = float64(s.Sum) / float64(s.Count) / scale
			}
			qs := SummaryFromBuckets(s.Buckets)
			sq.Quantiles = QuantileSummary{P50: qs.P50 / scale, P90: qs.P90 / scale, P99: qs.P99 / scale}
			out[f.Name] = append(out[f.Name], sq)
		}
	}
	return out
}

// Quantile estimates the q-quantile of the histogram's observations across
// all shards. Nil-safe: returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	var buckets [NumHistBuckets]int64
	for i := range h.sh {
		sh := &h.sh[i]
		for b := 0; b < NumHistBuckets; b++ {
			buckets[b] += sh.buckets[b].Load()
		}
	}
	return QuantileFromBuckets(buckets[:], q)
}

// Observe records v into the shard's slot. Nil-safe no-op.
func (h *Histogram) Observe(shard int, v int64) {
	if h == nil {
		return
	}
	s := &h.sh[shard&h.mask]
	s.buckets[bucketOf(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
}

// Count returns the total number of observations across shards.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var t int64
	for i := range h.sh {
		t += h.sh[i].count.Load()
	}
	return t
}

// Sum returns the sum of all observations across shards.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	var t int64
	for i := range h.sh {
		t += h.sh[i].sum.Load()
	}
	return t
}

// Span is an in-flight timing measurement: Start captures the clock, End
// observes the elapsed nanoseconds into the histogram. The pair is two
// time.Now calls and one Observe — cheap enough for per-run engine stages.
type Span struct {
	h     *Histogram
	t0    time.Time
	shard int
}

// Start opens a span that will record into the histogram's shard slot.
// Nil-safe: a span on a nil histogram still times but records nothing.
func (h *Histogram) Start(shard int) Span {
	return Span{h: h, t0: time.Now(), shard: shard}
}

// End records the span's elapsed nanoseconds.
func (s Span) End() {
	s.h.Observe(s.shard, time.Since(s.t0).Nanoseconds())
}

// floatBits/floatFromBits wrap math for the gauge's atomic float storage.
func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
