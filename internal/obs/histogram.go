package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumHistBuckets is the fixed bucket count of every histogram: bucket 0
// holds non-positive values, bucket k (1..62) holds values in
// [2^(k-1), 2^k), and the final bucket holds everything from 2^62 up —
// the +Inf bucket of the Prometheus exposition. Power-of-two bucketing
// turns Observe into one bits.Len64, which keeps the hot path at three
// atomic adds with no float math.
const NumHistBuckets = 64

// hshard is one histogram shard: per-bucket counts plus count/sum, owned by
// one worker on the hot path and only read across workers at snapshot time.
type hshard struct {
	buckets [NumHistBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Histogram is a sharded log-bucketed distribution of int64 observations
// (typically nanoseconds or cycles).
type Histogram struct {
	sh   []hshard
	mask int
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	k := bits.Len64(uint64(v))
	if k >= NumHistBuckets {
		return NumHistBuckets - 1
	}
	return k
}

// BucketUpperBound returns bucket i's inclusive upper bound: 0 for bucket 0,
// 2^i - 1 for the middle buckets, and +Inf for the final bucket. These are
// the `le` values of the Prometheus exposition.
func BucketUpperBound(i int) float64 {
	switch {
	case i <= 0:
		return 0
	case i >= NumHistBuckets-1:
		return math.Inf(1)
	default:
		return float64(uint64(1)<<i - 1)
	}
}

// Observe records v into the shard's slot. Nil-safe no-op.
func (h *Histogram) Observe(shard int, v int64) {
	if h == nil {
		return
	}
	s := &h.sh[shard&h.mask]
	s.buckets[bucketOf(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
}

// Count returns the total number of observations across shards.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var t int64
	for i := range h.sh {
		t += h.sh[i].count.Load()
	}
	return t
}

// Sum returns the sum of all observations across shards.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	var t int64
	for i := range h.sh {
		t += h.sh[i].sum.Load()
	}
	return t
}

// Span is an in-flight timing measurement: Start captures the clock, End
// observes the elapsed nanoseconds into the histogram. The pair is two
// time.Now calls and one Observe — cheap enough for per-run engine stages.
type Span struct {
	h     *Histogram
	t0    time.Time
	shard int
}

// Start opens a span that will record into the histogram's shard slot.
// Nil-safe: a span on a nil histogram still times but records nothing.
func (h *Histogram) Start(shard int) Span {
	return Span{h: h, t0: time.Now(), shard: shard}
}

// End records the span's elapsed nanoseconds.
func (s Span) End() {
	s.h.Observe(s.shard, time.Since(s.t0).Nanoseconds())
}

// floatBits/floatFromBits wrap math for the gauge's atomic float storage.
func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
