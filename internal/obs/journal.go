package obs

import (
	"bufio"
	"os"
	"sync"
)

// Journal is a line-oriented structured run log: callers append one JSON
// record per line (JSONL) and the journal flushes each line so the file is
// always tail-able during a live sweep. Record encoding belongs to the
// caller — the journal only guarantees atomic, ordered, newline-terminated
// appends and running line/byte statistics.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	bw    *bufio.Writer
	lines int64
	bytes int64
}

// CreateJournal creates (truncating) a journal file at path.
func CreateJournal(path string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f, bw: bufio.NewWriterSize(f, 1<<16)}, nil
}

// WriteLine appends one record (without trailing newline) and flushes.
// Safe for concurrent use; nil-safe no-op.
func (j *Journal) WriteLine(rec []byte) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.bw.Write(rec); err != nil {
		return err
	}
	if err := j.bw.WriteByte('\n'); err != nil {
		return err
	}
	j.lines++
	j.bytes += int64(len(rec)) + 1
	return j.bw.Flush()
}

// Stats returns the lines and bytes written so far.
func (j *Journal) Stats() (lines, bytes int64) {
	if j == nil {
		return 0, 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lines, j.bytes
}

// Close flushes and closes the underlying file. Nil-safe.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.bw.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
