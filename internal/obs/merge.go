package obs

import (
	"fmt"
	"sort"
)

// WorkerSnapshot pairs a worker's name with the registry snapshot it
// reported — the unit MergeSnapshots consumes.
type WorkerSnapshot struct {
	Worker string
	Snap   Snapshot
}

// MergeSnapshots combines per-worker registry snapshots into one fleet view.
// For every family the output carries two layers of series: a fleet-merged
// series per base label set (counters and gauges summed, histogram buckets,
// counts and sums added element-wise) and one series per contributing worker
// with a `worker=<name>` label appended, preserving each worker's raw
// numbers. Any `worker` label already present in an input series is replaced
// by the reporting worker's name, and the merged series drops PerShard
// breakdowns (shard indices are not comparable across processes).
//
// The merge is deterministic and order-independent: inputs are sorted by
// worker name before any accumulation, so every permutation of the same
// snapshots yields byte-identical Encode output. Duplicate worker names and
// conflicting family kinds or scales are errors.
func MergeSnapshots(workers []WorkerSnapshot) (Snapshot, error) {
	sorted := append([]WorkerSnapshot(nil), workers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Worker < sorted[j].Worker })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Worker == sorted[i-1].Worker {
			return Snapshot{}, fmt.Errorf("obs: merge: duplicate worker %q", sorted[i].Worker)
		}
	}

	type mergedSeries struct {
		merged    SeriesSnapshot
		perWorker []SeriesSnapshot
	}
	type mergedFamily struct {
		name, help, kind string
		scale            float64
		series           map[string]*mergedSeries
		order            []string
	}
	fams := make(map[string]*mergedFamily)
	var order []string

	for _, ws := range sorted {
		if err := ws.Snap.Validate(); err != nil {
			return Snapshot{}, fmt.Errorf("obs: merge: worker %q: %w", ws.Worker, err)
		}
		for _, f := range ws.Snap.Families {
			mf := fams[f.Name]
			if mf == nil {
				mf = &mergedFamily{name: f.Name, help: f.Help, kind: f.Kind, scale: f.Scale, series: make(map[string]*mergedSeries)}
				fams[f.Name] = mf
				order = append(order, f.Name)
			} else {
				if mf.kind != f.Kind {
					return Snapshot{}, fmt.Errorf("obs: merge: family %s: kind %q vs %q", f.Name, mf.kind, f.Kind)
				}
				if mf.scale != f.Scale {
					return Snapshot{}, fmt.Errorf("obs: merge: family %s: scale %v vs %v", f.Name, mf.scale, f.Scale)
				}
				if mf.help == "" {
					mf.help = f.Help
				}
			}
			for _, s := range f.Series {
				base := make([]Label, 0, len(s.Labels))
				for _, l := range s.Labels {
					if l.Key != "worker" {
						base = append(base, l)
					}
				}
				key := labelKey(base)
				ms := mf.series[key]
				if ms == nil {
					ms = &mergedSeries{merged: SeriesSnapshot{Labels: base}}
					mf.series[key] = ms
					mf.order = append(mf.order, key)
				}
				switch f.Kind {
				case KindHistogram.String():
					if len(s.Buckets) > len(ms.merged.Buckets) {
						grown := make([]int64, len(s.Buckets))
						copy(grown, ms.merged.Buckets)
						ms.merged.Buckets = grown
					}
					for b, n := range s.Buckets {
						ms.merged.Buckets[b] += n
					}
					ms.merged.Count += s.Count
					ms.merged.Sum += s.Sum
				default:
					ms.merged.Value += s.Value
				}
				pw := SeriesSnapshot{
					Labels:   append(append(make([]Label, 0, len(base)+1), base...), L("worker", ws.Worker)),
					Value:    s.Value,
					PerShard: append([]int64(nil), s.PerShard...),
					Buckets:  append([]int64(nil), s.Buckets...),
					Count:    s.Count,
					Sum:      s.Sum,
				}
				sortLabels(pw.Labels)
				ms.perWorker = append(ms.perWorker, pw)
			}
		}
	}

	sort.Strings(order)
	out := Snapshot{Families: make([]FamilySnapshot, 0, len(order))}
	for _, name := range order {
		mf := fams[name]
		fs := FamilySnapshot{Name: mf.name, Help: mf.help, Kind: mf.kind, Scale: mf.scale}
		for _, key := range mf.order {
			ms := mf.series[key]
			fs.Series = append(fs.Series, ms.merged)
			fs.Series = append(fs.Series, ms.perWorker...)
		}
		sort.Slice(fs.Series, func(i, j int) bool {
			return labelKey(fs.Series[i].Labels) < labelKey(fs.Series[j].Labels)
		})
		out.Families = append(out.Families, fs)
	}
	return out, nil
}
