package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSanitizeMetricName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"", "_"},
		{"ok_name:x", "ok_name:x"},
		{"9leading", "_leading"},
		{"has-dash.dot", "has_dash_dot"},
		{"sp ace", "sp_ace"},
		{"armdse_runs_total", "armdse_runs_total"},
	} {
		if got := SanitizeMetricName(tc.in); got != tc.want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSanitizeLabelName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"", "_"},
		{"app", "app"},
		{"with:colon", "with_colon"}, // labels, unlike metrics, forbid colons
		{"1st", "_st"},
	} {
		if got := SanitizeLabelName(tc.in); got != tc.want {
			t.Errorf("SanitizeLabelName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestEscapeLabelValueRoundTrip(t *testing.T) {
	for _, in := range []string{
		"", "plain", `back\slash`, `quo"te`, "new\nline", `all\"three` + "\n",
		"unicode ✓ λ", string([]byte{0, 1, 2}),
	} {
		esc := EscapeLabelValue(in)
		if strings.ContainsRune(esc, '\n') {
			t.Errorf("EscapeLabelValue(%q) contains a raw newline", in)
		}
		if got := UnescapeLabelValue(esc); got != in {
			t.Errorf("round-trip %q -> %q -> %q", in, esc, got)
		}
	}
	if got := EscapeLabelValue("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Errorf("escape = %q", got)
	}
}

func TestWritePrometheusCountersAndGauges(t *testing.T) {
	r := NewRegistry(2)
	r.Counter("runs_total", "Completed runs.", L("app", "STREAM")).Add(0, 3)
	r.Counter("runs_total", "Completed runs.", L("app", `we"ird\app`+"\n")).Add(1, 2)
	r.Gauge("eta_seconds", "").Set(1.5)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{
		"# TYPE eta_seconds gauge\n",
		"eta_seconds 1.5\n",
		"# HELP runs_total Completed runs.\n",
		"# TYPE runs_total counter\n",
		`runs_total{app="STREAM"} 3` + "\n",
		`runs_total{app="we\"ird\\app\n"} 2` + "\n",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q\n%s", w, out)
		}
	}
	// eta_seconds sorts before runs_total.
	if strings.Index(out, "eta_seconds") > strings.Index(out, "runs_total") {
		t.Error("families not in name order")
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry(4)
	r.Counter("a_total", "", L("x", "2")).Inc(0)
	r.Counter("a_total", "", L("x", "1")).Inc(1)
	r.Histogram("h_ns", "").Observe(0, 100)
	snap := r.Snapshot()
	var b1, b2 strings.Builder
	if err := WritePrometheus(&b1, snap); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b2, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Errorf("two expositions of the same state differ:\n%s\nvs\n%s", b1.String(), b2.String())
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	r := NewRegistry(1)
	h := r.Histogram("lat_ns", "Latency.")
	h.Observe(0, 1) // bucket 1, le=1
	h.Observe(0, 3) // bucket 2, le=3
	h.Observe(0, 3)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{
		"# TYPE lat_ns histogram\n",
		`lat_ns_bucket{le="0"} 0` + "\n",
		`lat_ns_bucket{le="1"} 1` + "\n",
		`lat_ns_bucket{le="3"} 3` + "\n",
		`lat_ns_bucket{le="+Inf"} 3` + "\n",
		"lat_ns_sum 7\n",
		"lat_ns_count 3\n",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q\n%s", w, out)
		}
	}
	// Empty tail buckets beyond the last occupied one must be trimmed.
	if strings.Contains(out, `le="7"`) {
		t.Errorf("empty tail bucket not trimmed:\n%s", out)
	}
	// Buckets are cumulative and non-decreasing.
	if strings.Index(out, `le="1"`) > strings.Index(out, `le="3"`) {
		t.Error("buckets out of order")
	}
}

// A TimeHistogram stores nanoseconds but exposes seconds: le bounds and the
// sum are divided by TimeScale at exposition, counts are untouched.
func TestWritePrometheusTimeHistogram(t *testing.T) {
	r := NewRegistry(1)
	h := r.TimeHistogram("barrier_seconds", "Barrier wall time.")
	h.Observe(0, 1)             // 1ns: bucket 1, le = 1e-09 s
	h.Observe(0, 1_500_000_000) // 1.5s: bucket 31, le = (2^31-1)/1e9 s

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{
		"# TYPE barrier_seconds histogram\n",
		`barrier_seconds_bucket{le="1e-09"} 1` + "\n",
		`barrier_seconds_bucket{le="2.147483647"} 2` + "\n",
		`barrier_seconds_bucket{le="+Inf"} 2` + "\n",
		"barrier_seconds_sum 1.500000001\n",
		"barrier_seconds_count 2\n",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q\n%s", w, out)
		}
	}
	// The snapshot records the scale so JSON consumers can undo it.
	snap := r.Snapshot()
	if snap.Families[0].Scale != TimeScale {
		t.Errorf("snapshot scale = %g, want %g", snap.Families[0].Scale, float64(TimeScale))
	}
}

func TestHistogramScaleConflictPanics(t *testing.T) {
	r := NewRegistry(1)
	r.Histogram("h_mixed", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a histogram under a different scale did not panic")
		}
	}()
	r.TimeHistogram("h_mixed", "")
}

func TestFormatValue(t *testing.T) {
	r := NewRegistry(1)
	r.Gauge("g1", "").Set(3)
	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "g1 3\n") {
		t.Errorf("integral gauge not rendered without exponent: %s", b.String())
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRegistry(2)
	r.Counter("c_total", "help", L("app", "x")).Add(0, 5)
	r.Histogram("h_ns", "").Observe(1, 9)
	var b strings.Builder
	if err := WriteJSON(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if len(back.Families) != 2 {
		t.Fatalf("families = %d", len(back.Families))
	}
	if back.Families[0].Name != "c_total" || back.Families[0].Series[0].Value != 5 {
		t.Errorf("counter round-trip: %+v", back.Families[0])
	}
	if back.Families[1].Series[0].Sum != 9 {
		t.Errorf("histogram round-trip: %+v", back.Families[1])
	}
}

func FuzzSanitizeMetricName(f *testing.F) {
	f.Add("armdse_runs_total")
	f.Add("")
	f.Add("9-bad name\x00")
	f.Fuzz(func(t *testing.T, s string) {
		out := SanitizeMetricName(s)
		if out == "" {
			t.Fatalf("empty output for %q", s)
		}
		for i := 0; i < len(out); i++ {
			c := out[i]
			ok := c == '_' || c == ':' ||
				(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(c >= '0' && c <= '9' && i > 0)
			if !ok {
				t.Fatalf("SanitizeMetricName(%q) = %q: invalid byte %q at %d", s, out, c, i)
			}
		}
		if again := SanitizeMetricName(out); again != out {
			t.Fatalf("not idempotent: %q -> %q -> %q", s, out, again)
		}
	})
}

func FuzzEscapeLabelValue(f *testing.F) {
	f.Add("plain")
	f.Add(`a\b"c` + "\nd")
	f.Add(string([]byte{0xff, 0xfe}))
	f.Fuzz(func(t *testing.T, s string) {
		esc := EscapeLabelValue(s)
		if strings.ContainsRune(esc, '\n') {
			t.Fatalf("EscapeLabelValue(%q) = %q contains a raw newline", s, esc)
		}
		// Every quote must be escaped, so an escaped value never terminates
		// the exposition's quoted string early.
		for i := 0; i < len(esc); i++ {
			if esc[i] != '"' {
				continue
			}
			bs := 0
			for j := i - 1; j >= 0 && esc[j] == '\\'; j-- {
				bs++
			}
			if bs%2 == 0 {
				t.Fatalf("EscapeLabelValue(%q) = %q has unescaped quote at %d", s, esc, i)
			}
		}
		if got := UnescapeLabelValue(esc); got != s {
			t.Fatalf("round-trip %q -> %q -> %q", s, esc, got)
		}
	})
}
