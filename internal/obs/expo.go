package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"math"
	"strconv"
	"strings"
)

// SanitizeMetricName maps an arbitrary string onto the Prometheus metric
// name alphabet [a-zA-Z_:][a-zA-Z0-9_:]*, replacing every invalid byte with
// '_'. An empty input becomes "_". The function is idempotent: sanitising a
// sanitised name returns it unchanged.
func SanitizeMetricName(s string) string {
	if s == "" {
		return "_"
	}
	var b []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			if b == nil {
				b = []byte(s)
			}
			b[i] = '_'
		}
	}
	if b == nil {
		return s
	}
	return string(b)
}

// SanitizeLabelName maps an arbitrary string onto the Prometheus label name
// alphabet [a-zA-Z_][a-zA-Z0-9_]* (no colons), replacing invalid bytes with
// '_'. Empty input becomes "_"; idempotent like SanitizeMetricName.
func SanitizeLabelName(s string) string {
	if s == "" {
		return "_"
	}
	var b []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			if b == nil {
				b = []byte(s)
			}
			b[i] = '_'
		}
	}
	if b == nil {
		return s
	}
	return string(b)
}

// EscapeLabelValue escapes a label value for the text exposition format:
// backslash, double quote and newline become \\, \" and \n. Any string is
// representable; UnescapeLabelValue inverts the mapping exactly.
func EscapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// UnescapeLabelValue inverts EscapeLabelValue. Unknown escapes pass the
// escaped byte through verbatim, matching the exposition format's lenient
// readers.
func UnescapeLabelValue(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' || i+1 == len(s) {
			b.WriteByte(c)
			continue
		}
		i++
		switch s[i] {
		case 'n':
			b.WriteByte('\n')
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string (backslash and newline only, per the
// exposition format).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects: integral
// floats without an exponent, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// writeLabels renders a label set (plus an optional trailing le pair) in
// sorted-key order.
func writeLabels(w *bufio.Writer, labels []Label, le string) {
	if len(labels) == 0 && le == "" {
		return
	}
	w.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(l.Key)
		w.WriteString(`="`)
		w.WriteString(EscapeLabelValue(l.Value))
		w.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			w.WriteByte(',')
		}
		w.WriteString(`le="`)
		w.WriteString(le)
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). Output is deterministic: families in name order,
// series in label-identity order, histogram buckets ascending with empty
// leading/trailing runs trimmed (the +Inf bucket is always present).
func WritePrometheus(w io.Writer, snap Snapshot) error {
	bw := bufio.NewWriter(w)
	for _, f := range snap.Families {
		if f.Help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.Name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.Help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.Name)
		bw.WriteByte(' ')
		bw.WriteString(f.Kind)
		bw.WriteByte('\n')
		for _, s := range f.Series {
			if f.Kind != KindHistogram.String() {
				bw.WriteString(f.Name)
				writeLabels(bw, s.Labels, "")
				bw.WriteByte(' ')
				bw.WriteString(formatValue(s.Value))
				bw.WriteByte('\n')
				continue
			}
			// Histogram: cumulative buckets up to the last non-empty one,
			// then +Inf, _sum and _count. A scaled family (TimeHistogram)
			// divides its `le` bounds and sum by the scale at this point —
			// the stored int64 observations are untouched.
			scale := f.Scale
			if scale <= 0 {
				scale = 1
			}
			last := 0
			for b, n := range s.Buckets {
				if n != 0 {
					last = b
				}
			}
			var cum int64
			for b := 0; b <= last && b < NumHistBuckets-1; b++ {
				cum += s.Buckets[b]
				bw.WriteString(f.Name)
				bw.WriteString("_bucket")
				writeLabels(bw, s.Labels, formatValue(BucketUpperBound(b)/scale))
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatInt(cum, 10))
				bw.WriteByte('\n')
			}
			bw.WriteString(f.Name)
			bw.WriteString("_bucket")
			writeLabels(bw, s.Labels, "+Inf")
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(s.Count, 10))
			bw.WriteByte('\n')
			bw.WriteString(f.Name)
			bw.WriteString("_sum")
			writeLabels(bw, s.Labels, "")
			bw.WriteByte(' ')
			if scale == 1 {
				bw.WriteString(strconv.FormatInt(s.Sum, 10))
			} else {
				bw.WriteString(formatValue(float64(s.Sum) / scale))
			}
			bw.WriteByte('\n')
			bw.WriteString(f.Name)
			bw.WriteString("_count")
			writeLabels(bw, s.Labels, "")
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(s.Count, 10))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// WriteJSON renders the snapshot as indented JSON — the /debug/vars-style
// machine-readable twin of the Prometheus exposition.
func WriteJSON(w io.Writer, snap Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}
