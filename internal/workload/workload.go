package workload

import (
	"fmt"

	"armdse/internal/isa"
)

// Memory-map constants. Code sits low, data arrays are bump-allocated from
// DataBase with cache-line-friendly alignment. Addresses are "physical" as
// far as the cache model is concerned.
const (
	// CodeBase is the byte PC of the first static instruction.
	CodeBase = 0x1000
	// DataBase is the start of the data segment.
	DataBase = 0x10_0000
	// ArrayAlign is the alignment of every allocated array, chosen to be
	// at least the largest cache-line width in the study (256 B).
	ArrayAlign = 256
)

// MinVL and MaxVL bound the SVE vector lengths of the study (Table II).
const (
	MinVL = 128
	MaxVL = 2048
)

// CheckVL validates an SVE vector length: a power of two in [128, 2048].
func CheckVL(vl int) error {
	if vl < MinVL || vl > MaxVL || vl&(vl-1) != 0 {
		return fmt.Errorf("workload: vector length %d not a power of two in [%d, %d]", vl, MinVL, MaxVL)
	}
	return nil
}

// Workload is one benchmark application. Implementations are deterministic:
// the instruction stream depends only on the constructor inputs and the
// vector length passed to Program.
type Workload interface {
	// Name returns the application name as used in the paper.
	Name() string
	// Program builds the dynamic program for the given SVE vector length
	// in bits.
	Program(vl int) (*Program, error)
	// Footprint returns the data footprint in bytes (used to reason about
	// cache residency, e.g. STREAM's 4.6 MiB vs the L2 size range).
	Footprint() int64
	// Validate runs the functional reference implementation and checks
	// its results, standing in for the mini-apps' built-in validation.
	Validate() error
}

// Names of the four applications, in the paper's presentation order.
const (
	NameSTREAM    = "STREAM"
	NameMiniBUDE  = "miniBUDE"
	NameTeaLeaf   = "TeaLeaf"
	NameMiniSweep = "MiniSweep"
)

// AppNames lists the applications in presentation order.
func AppNames() []string {
	return []string{NameSTREAM, NameMiniBUDE, NameTeaLeaf, NameMiniSweep}
}

// PaperSuite returns the four workloads with the paper's Table IV inputs.
// Dynamic instruction counts land in the paper's 10–50M range; prefer
// TestSuite for unit tests and benchmark harnesses.
func PaperSuite() []Workload {
	return []Workload{
		NewSTREAM(PaperSTREAMInputs()),
		NewMiniBUDE(PaperMiniBUDEInputs()),
		NewTeaLeaf(PaperTeaLeafInputs()),
		NewMiniSweep(PaperMiniSweepInputs()),
	}
}

// TestSuite returns the four workloads scaled down (documented substitution:
// the paper's 1–5 minute simulations are shrunk to keep a laptop-scale study
// tractable while preserving each code's compute/memory character and the
// cache-residency crossovers of the study's parameter ranges).
func TestSuite() []Workload {
	return []Workload{
		NewSTREAM(TestSTREAMInputs()),
		NewMiniBUDE(TestMiniBUDEInputs()),
		NewTeaLeaf(TestTeaLeafInputs()),
		NewMiniSweep(TestMiniSweepInputs()),
	}
}

// ByName returns the workload with the given name from the suite, or nil.
func ByName(suite []Workload, name string) Workload {
	for _, w := range suite {
		if w.Name() == name {
			return w
		}
	}
	return nil
}

// StreamFor is a convenience returning the instruction stream of w at vl.
func StreamFor(w Workload, vl int) (isa.Stream, error) {
	p, err := w.Program(vl)
	if err != nil {
		return nil, err
	}
	return p.Stream(), nil
}

// VectorisationPct returns the percentage of instructions in w's dynamic
// stream at vl that are SVE instructions (at least one Z register operand) —
// the paper's Fig. 1 metric, measured over the full trace rather than a
// hardware counter.
func VectorisationPct(w Workload, vl int) (float64, error) {
	s, err := StreamFor(w, vl)
	if err != nil {
		return 0, err
	}
	total, sve := isa.CountSVE(s)
	if total == 0 {
		return 0, fmt.Errorf("workload %s: empty stream", w.Name())
	}
	return 100 * float64(sve) / float64(total), nil
}

// alloc is a bump allocator for laying out a workload's arrays.
type alloc struct{ next uint64 }

func newAlloc() *alloc { return &alloc{next: DataBase} }

// array reserves n bytes and returns the base address.
func (a *alloc) array(n int64) uint64 {
	base := a.next
	sz := (uint64(n) + ArrayAlign - 1) &^ uint64(ArrayAlign-1)
	a.next += sz
	return base
}

// used returns the total bytes allocated.
func (a *alloc) used() int64 { return int64(a.next - DataBase) }
