package workload

import (
	"strings"
	"testing"

	"armdse/internal/isa"
)

// daxpySpec is the canonical custom kernel: y = a*x + y, vectorised.
func daxpySpec(n int64) CustomKernel {
	return CustomKernel{
		Name:   "daxpy",
		Arrays: map[string]int64{"x": n, "y": n},
		Loops: []CustomLoop{{
			Label:  "daxpy",
			Elems:  n,
			Vector: true,
			Ops: []CustomOp{
				{Kind: OpLoad, Array: "x", Dst: 0},
				{Kind: OpLoad, Array: "y", Dst: 1},
				{Kind: OpFMA, Dst: 2, Srcs: []int{0, 1, 3}},
				{Kind: OpStore, Array: "y", Srcs: []int{2}},
			},
		}},
	}
}

func TestCustomDaxpy(t *testing.T) {
	c, err := NewCustom(daxpySpec(1024))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "daxpy" {
		t.Errorf("name = %s", c.Name())
	}
	if c.Footprint() < 2*1024*8 {
		t.Errorf("footprint = %d", c.Footprint())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Vector-length agnosticism: trip count divides by elements/vector.
	p128, err := c.Program(128)
	if err != nil {
		t.Fatal(err)
	}
	p2048, err := c.Program(2048)
	if err != nil {
		t.Fatal(err)
	}
	if p128.DynamicInsts() != 16*p2048.DynamicInsts() {
		t.Errorf("VL scaling: %d vs %d insts", p128.DynamicInsts(), p2048.DynamicInsts())
	}
	// Body: 4 ops + 3 loop-control instructions.
	if got := len(p128.Loops[0].Body); got != 7 {
		t.Errorf("body = %d instructions, want 7", got)
	}
	// SVE accesses are one vector wide.
	if b := p2048.Loops[0].Body[0].Pat.Bytes; b != 256 {
		t.Errorf("vector load width = %d, want 256", b)
	}
	// The generated stream is heavily vectorised.
	pct, err := VectorisationPct(c, 512)
	if err != nil {
		t.Fatal(err)
	}
	if pct < 40 {
		t.Errorf("vectorisation = %.1f%%", pct)
	}
}

func TestCustomScalarLoopAndReduction(t *testing.T) {
	c, err := NewCustom(CustomKernel{
		Name:   "dot",
		Arrays: map[string]int64{"x": 256, "y": 256},
		Repeat: 2,
		Loops: []CustomLoop{{
			Label: "dot",
			Elems: 256,
			Ops: []CustomOp{
				{Kind: OpLoad, Array: "x", Dst: 0},
				{Kind: OpLoad, Array: "y", Dst: 1},
				{Kind: OpFMA, Dst: 2, Srcs: []int{0, 1}, Serial: true},
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Program(512)
	if err != nil {
		t.Fatal(err)
	}
	// Scalar loop: trip count is element count regardless of VL.
	if p.Loops[0].Iters != 256 {
		t.Errorf("iters = %d", p.Loops[0].Iters)
	}
	if p.Repeat != 2 {
		t.Errorf("repeat = %d", p.Repeat)
	}
	// The reduction op has its dest among its sources (serial chain).
	fma := p.Loops[0].Body[2].Inst
	found := false
	for _, s := range fma.SrcRegs() {
		if s == fma.Dests[0] {
			found = true
		}
	}
	if !found {
		t.Error("serial reduction lost its chain dependency")
	}
	// Scalar loops emit scalar FP groups.
	if fma.Op != isa.FPFMA || fma.SVE {
		t.Errorf("scalar loop op = %v sve=%v", fma.Op, fma.SVE)
	}
}

func TestCustomStencilOffsets(t *testing.T) {
	c, err := NewCustom(CustomKernel{
		Name:   "stencil",
		Arrays: map[string]int64{"u": 1000, "w": 1000},
		Loops: []CustomLoop{{
			Label: "stencil",
			Elems: 998,
			Ops: []CustomOp{
				{Kind: OpLoad, Array: "u", Dst: 0, OffsetElems: 0},
				{Kind: OpLoad, Array: "u", Dst: 1, OffsetElems: 1},
				{Kind: OpLoad, Array: "u", Dst: 2, OffsetElems: 2},
				{Kind: OpAdd, Dst: 3, Srcs: []int{0, 1}},
				{Kind: OpAdd, Dst: 3, Srcs: []int{3, 2}},
				{Kind: OpStore, Array: "w", Srcs: []int{3}, OffsetElems: 1},
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Program(128)
	if err != nil {
		t.Fatal(err)
	}
	// Neighbour offsets land 8 bytes apart.
	b := p.Loops[0].Body
	if b[1].Pat.Base-b[0].Pat.Base != 8 || b[2].Pat.Base-b[1].Pat.Base != 8 {
		t.Error("stencil offsets wrong")
	}
}

func TestCustomRunsOnSimulator(t *testing.T) {
	c, err := NewCustom(daxpySpec(2048))
	if err != nil {
		t.Fatal(err)
	}
	s, err := StreamFor(c, 256)
	if err != nil {
		t.Fatal(err)
	}
	if n := isa.Count(s); n <= 0 {
		t.Fatal("empty stream")
	}
	// Addresses stay inside the data segment.
	var in isa.Inst
	s.Reset()
	hi := uint64(DataBase) + uint64(c.Footprint())
	for s.Next(&in) {
		if in.Op.IsMem() && (in.Mem.Addr < DataBase || in.Mem.Addr+uint64(in.Mem.Bytes) > hi) {
			t.Fatalf("access %#x outside data", in.Mem.Addr)
		}
	}
}

func TestCustomValidationErrors(t *testing.T) {
	base := daxpySpec(64)
	cases := []struct {
		name   string
		mutate func(*CustomKernel)
		frag   string
	}{
		{"no name", func(k *CustomKernel) { k.Name = "" }, "name"},
		{"no loops", func(k *CustomKernel) { k.Loops = nil }, "no loops"},
		{"negative repeat", func(k *CustomKernel) { k.Repeat = -1 }, "repeat"},
		{"empty array", func(k *CustomKernel) { k.Arrays["x"] = 0 }, "elements"},
		{"zero elems", func(k *CustomKernel) { k.Loops[0].Elems = 0 }, "elements"},
		{"no ops", func(k *CustomKernel) { k.Loops[0].Ops = nil }, "no ops"},
		{"unknown array", func(k *CustomKernel) { k.Loops[0].Ops[0].Array = "z" }, "unknown array"},
		{"out of bounds", func(k *CustomKernel) { k.Loops[0].Ops[0].StrideElems = 100 }, "runs to element"},
		{"bad register", func(k *CustomKernel) { k.Loops[0].Ops[0].Dst = 99 }, "register"},
		{"store sources", func(k *CustomKernel) { k.Loops[0].Ops[3].Srcs = nil }, "one source"},
		{"fma sources", func(k *CustomKernel) { k.Loops[0].Ops[2].Srcs = []int{0} }, "sources"},
	}
	for _, c := range cases {
		spec := daxpySpec(64)
		_ = base
		c.mutate(&spec)
		_, err := NewCustom(spec)
		if err == nil {
			t.Errorf("%s accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.frag)
		}
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{
		OpLoad: "load", OpStore: "store", OpAdd: "add",
		OpMul: "mul", OpFMA: "fma", OpDiv: "div",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if OpKind(99).String() == "" {
		t.Error("unknown kind empty")
	}
}
