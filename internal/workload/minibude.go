package workload

import (
	"fmt"
	"math"

	"armdse/internal/isa"
)

// MiniBUDEInputs mirrors Table IV's miniBUDE row: the bm1 deck with a given
// number of protein atoms and poses, run for Iterations passes. Repeats is an
// additional whole-kernel multiplier used to scale dynamic work (the real bm1
// deck also iterates over ligand atoms, which this synthetic kernel folds
// into repeats; documented substitution).
type MiniBUDEInputs struct {
	Atoms      int64
	Poses      int64
	Iterations int64
	Repeats    int64
}

// PaperMiniBUDEInputs returns Table IV's values: bm1, 26 atoms, 64 poses,
// 1 iteration.
func PaperMiniBUDEInputs() MiniBUDEInputs {
	return MiniBUDEInputs{Atoms: 26, Poses: 64, Iterations: 1, Repeats: 16}
}

// TestMiniBUDEInputs returns a scaled configuration for tests and benches.
func TestMiniBUDEInputs() MiniBUDEInputs {
	return MiniBUDEInputs{Atoms: 26, Poses: 64, Iterations: 1, Repeats: 2}
}

// MiniBUDE models the BUDE virtual-screening kernel: for every ligand pose it
// accumulates an interaction energy against every protein atom. It is the
// study's compute-bound, highly vectorised application — vectorised across
// poses, with a small (L1-resident) data footprint and abundant FP work per
// byte loaded.
type MiniBUDE struct {
	in MiniBUDEInputs

	protein  uint64 // natoms records of 32 bytes
	poses    uint64 // 3 × poses float64 (transformed coordinates)
	energies uint64 // poses float64
	foot     int64
}

// NewMiniBUDE builds the miniBUDE workload.
func NewMiniBUDE(in MiniBUDEInputs) *MiniBUDE {
	al := newAlloc()
	m := &MiniBUDE{in: in}
	m.protein = al.array(in.Atoms * 32)
	m.poses = al.array(in.Poses * 3 * 8)
	m.energies = al.array(in.Poses * 8)
	m.foot = al.used()
	return m
}

// Name implements Workload.
func (m *MiniBUDE) Name() string { return NameMiniBUDE }

// Footprint implements Workload.
func (m *MiniBUDE) Footprint() int64 { return m.foot }

// Inputs returns the constructor inputs.
func (m *MiniBUDE) Inputs() MiniBUDEInputs { return m.in }

// Program implements Workload. The fasten kernel is flattened into a single
// loop over (pose-block × atom): each iteration loads one protein atom record
// (two scalar loads) and performs ~22 vector operations on a block of vl/64
// poses held in Z registers; a second loop reduces and stores the per-pose
// energies. Pose coordinates are modelled as register-resident across the
// atom loop, as the real kernel keeps them after its per-block preamble.
func (m *MiniBUDE) Program(vl int) (*Program, error) {
	if err := CheckVL(vl); err != nil {
		return nil, err
	}
	if m.in.Atoms <= 0 || m.in.Poses <= 0 || m.in.Iterations <= 0 || m.in.Repeats <= 0 {
		return nil, fmt.Errorf("miniBUDE: non-positive inputs %+v", m.in)
	}
	epv := int64(vl / 64)
	blocks := ceilDiv(m.in.Poses, epv)
	vb := uint32(vl / 8)

	// Scalar protein-atom record fields (D-register loads, not SVE).
	d1, d2 := isa.R(isa.FP, 1), isa.R(isa.FP, 2)
	// Pose-block coordinates, register-resident.
	px, py, pz := isa.R(isa.FP, 4), isa.R(isa.FP, 5), isa.R(isa.FP, 6)
	// Temporaries.
	t := func(i int) isa.Reg { return isa.R(isa.FP, 10+i) }
	// Energy accumulators: four independent chains for cross-iteration ILP.
	acc := [4]isa.Reg{isa.R(isa.FP, 24), isa.R(isa.FP, 25), isa.R(isa.FP, 26), isa.R(isa.FP, 27)}

	fasten := NewBody()
	// Protein atom record: position triple and charge/type parameters.
	fasten.Load(d1, false, Nested(m.protein, m.in.Atoms, 32, 0, 16))
	fasten.Load(d2, false, Nested(m.protein+16, m.in.Atoms, 32, 0, 16))
	// Distance vector components (broadcast-subtract of the scalar atom
	// coordinate from the pose-block coordinates).
	fasten.Op(isa.SVEAdd, true, t(0), px, d1)
	fasten.Op(isa.SVEAdd, true, t(1), py, d1)
	fasten.Op(isa.SVEAdd, true, t(2), pz, d2)
	// r² = dx² + dy² + dz²
	fasten.Op(isa.SVEMul, true, t(3), t(0), t(0))
	fasten.Op(isa.SVEFMA, true, t(3), t(1), t(1), t(3))
	fasten.Op(isa.SVEFMA, true, t(3), t(2), t(2), t(3))
	// Distance-dependent dielectric and surface terms (polynomial
	// approximations, as the real kernel's branch-free select chains).
	fasten.Op(isa.SVEMul, true, t(4), t(3), d2)
	fasten.Op(isa.SVEFMA, true, t(4), t(4), t(3), d1)
	fasten.Op(isa.SVEMul, true, t(5), t(4), t(4))
	fasten.Op(isa.SVEFMA, true, t(5), t(5), t(4), d2)
	fasten.Op(isa.SVEAdd, true, t(6), t(5), t(3))
	fasten.Op(isa.SVEMul, true, t(7), t(6), t(4))
	// Electrostatic term.
	fasten.Op(isa.SVEMul, true, t(8), t(3), d1)
	fasten.Op(isa.SVEFMA, true, t(8), t(8), t(6), d2)
	fasten.Op(isa.SVEAdd, true, t(9), t(8), t(7))
	fasten.Op(isa.SVEMul, true, t(10), t(9), t(5))
	fasten.Op(isa.SVEFMA, true, t(10), t(10), t(9), t(6))
	// Accumulate into four chains.
	fasten.Op(isa.SVEFMA, true, acc[0], t(7), t(4), acc[0])
	fasten.Op(isa.SVEFMA, true, acc[1], t(8), t(5), acc[1])
	fasten.Op(isa.SVEFMA, true, acc[2], t(9), t(6), acc[2])
	fasten.Op(isa.SVEFMA, true, acc[3], t(10), t(3), acc[3])
	fasten.ScalarLoopEnd()

	// Per-block reduction and energy store.
	reduce := NewBody()
	r0, r1, r2 := isa.R(isa.FP, 28), isa.R(isa.FP, 29), isa.R(isa.FP, 30)
	reduce.Op(isa.SVEAdd, true, r0, acc[0], acc[1])
	reduce.Op(isa.SVEAdd, true, r1, acc[2], acc[3])
	reduce.Op(isa.SVEAdd, true, r2, r0, r1)
	reduce.Store(r2, true, Flat(m.energies, int64(vb), vb))
	reduce.SVELoopEnd()

	return BuildProgram(CodeBase, m.in.Iterations*m.in.Repeats,
		fasten.Loop("fasten", blocks*m.in.Atoms),
		reduce.Loop("reduce", blocks),
	)
}

// budeAtom is a protein atom of the reference kernel.
type budeAtom struct{ x, y, z, charge, radius float64 }

// budeDeck deterministically synthesises the bm1-like deck: atom positions
// and charges, and pose displacements. No RNG state is shared with the
// simulator; the deck is a pure function of the inputs.
func (m *MiniBUDE) budeDeck() ([]budeAtom, [][3]float64) {
	atoms := make([]budeAtom, m.in.Atoms)
	for i := range atoms {
		fi := float64(i)
		atoms[i] = budeAtom{
			x:      math.Sin(fi*0.7) * 8,
			y:      math.Cos(fi*1.3) * 8,
			z:      math.Sin(fi*2.1+1) * 8,
			charge: math.Cos(fi * 0.9),
			radius: 1.2 + 0.4*math.Sin(fi*1.7),
		}
	}
	poses := make([][3]float64, m.in.Poses)
	for p := range poses {
		fp := float64(p)
		poses[p] = [3]float64{
			math.Sin(fp*0.31) * 4,
			math.Cos(fp*0.57) * 4,
			math.Sin(fp*0.83+2) * 4,
		}
	}
	return atoms, poses
}

// budeEnergy is the reference per-pose/atom interaction energy: a softened
// Lennard-Jones-plus-electrostatic form matching the kernel's operation mix.
func budeEnergy(a budeAtom, pose [3]float64) float64 {
	dx, dy, dz := pose[0]-a.x, pose[1]-a.y, pose[2]-a.z
	r2 := dx*dx + dy*dy + dz*dz + 0.5 // softening keeps energies finite
	s := a.radius * a.radius / r2
	steric := s*s*s - s
	elec := a.charge / r2
	return steric + elec
}

// Validate implements Workload: the pose-major and atom-major summation
// orders must agree (the blocked kernel vs the naive reference), and all
// energies must be finite.
func (m *MiniBUDE) Validate() error {
	if m.in.Atoms <= 0 || m.in.Poses <= 0 {
		return fmt.Errorf("miniBUDE: non-positive inputs %+v", m.in)
	}
	atoms, poses := m.budeDeck()

	poseMajor := make([]float64, len(poses))
	for p, pose := range poses {
		for _, a := range atoms {
			poseMajor[p] += budeEnergy(a, pose)
		}
	}
	atomMajor := make([]float64, len(poses))
	for _, a := range atoms {
		for p, pose := range poses {
			atomMajor[p] += budeEnergy(a, pose)
		}
	}
	for p := range poses {
		if math.IsNaN(poseMajor[p]) || math.IsInf(poseMajor[p], 0) {
			return fmt.Errorf("miniBUDE validation: non-finite energy for pose %d", p)
		}
		if diff := math.Abs(poseMajor[p] - atomMajor[p]); diff > 1e-9*(1+math.Abs(poseMajor[p])) {
			return fmt.Errorf("miniBUDE validation: pose %d energies disagree: %g vs %g",
				p, poseMajor[p], atomMajor[p])
		}
	}
	return nil
}
