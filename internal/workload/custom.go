package workload

import (
	"fmt"

	"armdse/internal/isa"
)

// The paper closes by noting its "modelling approach can be easily applied
// to new codes". CustomKernel is that door: a declarative description of a
// loop-nest kernel — arrays, loops, and per-iteration operations — from
// which a vector-length-agnostic Workload is generated, ready for the same
// simulation, dataset and surrogate pipeline as the four built-in apps.

// OpKind is one operation in a custom loop body.
type OpKind uint8

const (
	// OpLoad reads one element (or one vector of elements) from an array.
	OpLoad OpKind = iota
	// OpStore writes one element (or vector) to an array.
	OpStore
	// OpAdd, OpMul, OpFMA and OpDiv are arithmetic on the loop's virtual
	// registers; the loop's Vector flag selects scalar FP or SVE forms.
	OpAdd
	OpMul
	OpFMA
	OpDiv
)

// String returns the op mnemonic.
func (k OpKind) String() string {
	switch k {
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpAdd:
		return "add"
	case OpMul:
		return "mul"
	case OpFMA:
		return "fma"
	case OpDiv:
		return "div"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// customRegs is the size of a custom loop's virtual register window.
const customRegs = 16

// CustomOp is one operation of a custom loop body. Registers are indices
// into a window of 16 virtual registers, mapped onto architectural FP/SVE
// registers by the generator.
type CustomOp struct {
	// Kind selects the operation.
	Kind OpKind
	// Array names the accessed array (loads/stores only).
	Array string
	// StrideElems is the per-iteration element stride (default 1).
	StrideElems int64
	// OffsetElems biases the access (e.g. stencil neighbours).
	OffsetElems int64
	// Dst is the destination register (loads and arithmetic).
	Dst int
	// Srcs are source registers (arithmetic: as many as the op needs;
	// stores: Srcs[0] is the stored value).
	Srcs []int
	// Serial marks a reduction: Dst is also a source, forming a chain
	// across iterations.
	Serial bool
}

// CustomLoop is one loop of a custom kernel.
type CustomLoop struct {
	// Label names the loop in diagnostics.
	Label string
	// Elems is the logical trip count in elements; vector loops execute
	// ceil(Elems / (VL/64)) iterations, scalar loops Elems.
	Elems int64
	// Vector marks the loop as SVE-vectorised (vector-length agnostic).
	Vector bool
	// Ops is the loop body.
	Ops []CustomOp
}

// CustomKernel declares a synthetic workload.
type CustomKernel struct {
	// Name labels the workload (used as the dataset target column).
	Name string
	// Arrays maps array names to their length in 8-byte elements.
	Arrays map[string]int64
	// Loops execute in order; the whole sequence repeats Repeat times.
	Loops []CustomLoop
	// Repeat is the outer (timestep) count; 0 means 1.
	Repeat int64
}

// Custom is a Workload generated from a CustomKernel.
type Custom struct {
	spec  CustomKernel
	bases map[string]uint64
	foot  int64
}

// NewCustom validates the kernel description and builds the workload.
func NewCustom(spec CustomKernel) (*Custom, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("workload: custom kernel needs a name")
	}
	if spec.Repeat == 0 {
		spec.Repeat = 1
	}
	if spec.Repeat < 0 {
		return nil, fmt.Errorf("workload: negative repeat %d", spec.Repeat)
	}
	if len(spec.Loops) == 0 {
		return nil, fmt.Errorf("workload: custom kernel %q has no loops", spec.Name)
	}
	al := newAlloc()
	bases := make(map[string]uint64, len(spec.Arrays))
	for name, elems := range spec.Arrays {
		if elems <= 0 {
			return nil, fmt.Errorf("workload: array %q has %d elements", name, elems)
		}
		bases[name] = al.array(elems * 8)
	}
	for li, l := range spec.Loops {
		if l.Elems <= 0 {
			return nil, fmt.Errorf("workload: loop %d (%s) has %d elements", li, l.Label, l.Elems)
		}
		if len(l.Ops) == 0 {
			return nil, fmt.Errorf("workload: loop %d (%s) has no ops", li, l.Label)
		}
		for oi, op := range l.Ops {
			if err := validateOp(spec, l, op); err != nil {
				return nil, fmt.Errorf("workload: loop %d (%s) op %d: %w", li, l.Label, oi, err)
			}
		}
	}
	return &Custom{spec: spec, bases: bases, foot: al.used()}, nil
}

func validateOp(spec CustomKernel, l CustomLoop, op CustomOp) error {
	checkReg := func(r int) error {
		if r < 0 || r >= customRegs {
			return fmt.Errorf("register %d outside the %d-register window", r, customRegs)
		}
		return nil
	}
	switch op.Kind {
	case OpLoad, OpStore:
		elems, ok := spec.Arrays[op.Array]
		if !ok {
			return fmt.Errorf("unknown array %q", op.Array)
		}
		stride := op.StrideElems
		if stride == 0 {
			stride = 1
		}
		// The furthest iteration must stay inside the array.
		last := op.OffsetElems + (l.Elems-1)*stride
		if op.OffsetElems < 0 || last < 0 || last >= elems {
			return fmt.Errorf("access runs to element %d of array %q (%d elements)", last, op.Array, elems)
		}
		if op.Kind == OpLoad {
			return checkReg(op.Dst)
		}
		if len(op.Srcs) != 1 {
			return fmt.Errorf("store needs exactly one source register")
		}
		return checkReg(op.Srcs[0])
	case OpAdd, OpMul, OpFMA, OpDiv:
		if err := checkReg(op.Dst); err != nil {
			return err
		}
		want := 2
		if op.Kind == OpFMA {
			want = 3
		}
		if op.Serial {
			want--
		}
		if len(op.Srcs) != want {
			return fmt.Errorf("%s needs %d sources, got %d", op.Kind, want, len(op.Srcs))
		}
		for _, s := range op.Srcs {
			if err := checkReg(s); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown op kind %d", op.Kind)
	}
}

// Name implements Workload.
func (c *Custom) Name() string { return c.spec.Name }

// Footprint implements Workload.
func (c *Custom) Footprint() int64 { return c.foot }

// Spec returns the kernel description.
func (c *Custom) Spec() CustomKernel { return c.spec }

// groupFor maps an arithmetic op onto an execution group.
func groupFor(k OpKind, vector bool) isa.Group {
	switch k {
	case OpAdd:
		if vector {
			return isa.SVEAdd
		}
		return isa.FPAdd
	case OpMul:
		if vector {
			return isa.SVEMul
		}
		return isa.FPMul
	case OpFMA:
		if vector {
			return isa.SVEFMA
		}
		return isa.FPFMA
	default:
		if vector {
			return isa.SVEDiv
		}
		return isa.FPDiv
	}
}

// Program implements Workload.
func (c *Custom) Program(vl int) (*Program, error) {
	if err := CheckVL(vl); err != nil {
		return nil, err
	}
	epv := int64(vl / 64)
	loops := make([]Loop, 0, len(c.spec.Loops))
	for _, l := range c.spec.Loops {
		b := NewBody()
		reg := func(i int) isa.Reg { return isa.R(isa.FP, 8+i) } // v8..v23 window
		elemBytes := int64(8)
		accessBytes := uint32(8)
		strideUnit := int64(8)
		iters := l.Elems
		if l.Vector {
			accessBytes = uint32(vl / 8)
			strideUnit = int64(epv * 8)
			iters = ceilDiv(l.Elems, epv)
		}
		for _, op := range l.Ops {
			stride := op.StrideElems
			if stride == 0 {
				stride = 1
			}
			switch op.Kind {
			case OpLoad:
				base := c.bases[op.Array] + uint64(op.OffsetElems*elemBytes)
				b.Load(reg(op.Dst), l.Vector, Flat(base, stride*strideUnit, accessBytes))
			case OpStore:
				base := c.bases[op.Array] + uint64(op.OffsetElems*elemBytes)
				b.Store(reg(op.Srcs[0]), l.Vector, Flat(base, stride*strideUnit, accessBytes))
			default:
				srcs := make([]isa.Reg, 0, 3)
				for _, s := range op.Srcs {
					srcs = append(srcs, reg(s))
				}
				if op.Serial {
					srcs = append(srcs, reg(op.Dst))
				}
				b.Op(groupFor(op.Kind, l.Vector), l.Vector, reg(op.Dst), srcs...)
			}
		}
		if l.Vector {
			b.SVELoopEnd()
		} else {
			b.ScalarLoopEnd()
		}
		loops = append(loops, b.Loop(l.Label, iters))
	}
	return BuildProgram(CodeBase, c.spec.Repeat, loops...)
}

// Validate implements Workload: custom kernels have no functional reference,
// so validation checks the structural invariants — the program builds at
// every vector length and its dynamic size matches the spec.
func (c *Custom) Validate() error {
	for _, vl := range []int{MinVL, MaxVL} {
		p, err := c.Program(vl)
		if err != nil {
			return fmt.Errorf("workload: custom kernel %q at VL %d: %w", c.spec.Name, vl, err)
		}
		if p.DynamicInsts() <= 0 {
			return fmt.Errorf("workload: custom kernel %q is empty at VL %d", c.spec.Name, vl)
		}
	}
	return nil
}
