package workload

import (
	"testing"
	"testing/quick"

	"armdse/internal/isa"
)

func TestCheckVL(t *testing.T) {
	for _, vl := range []int{128, 256, 512, 1024, 2048} {
		if err := CheckVL(vl); err != nil {
			t.Errorf("CheckVL(%d) = %v, want nil", vl, err)
		}
	}
	for _, vl := range []int{0, 64, 96, 100, 192, 4096, -128} {
		if err := CheckVL(vl); err == nil {
			t.Errorf("CheckVL(%d) = nil, want error", vl)
		}
	}
}

func TestMemPatternAddr(t *testing.T) {
	flat := Flat(1000, 8, 8)
	for i := int64(0); i < 5; i++ {
		if got := flat.Addr(i); got != uint64(1000+8*i) {
			t.Errorf("flat.Addr(%d) = %d", i, got)
		}
	}
	fixed := Fixed(500, 16)
	if fixed.Addr(0) != 500 || fixed.Addr(100) != 500 {
		t.Error("fixed pattern moved")
	}
	nested := Nested(0, 4, 8, 100, 8)
	cases := map[int64]uint64{0: 0, 1: 8, 3: 24, 4: 100, 5: 108, 9: 208}
	for i, want := range cases {
		if got := nested.Addr(i); got != want {
			t.Errorf("nested.Addr(%d) = %d, want %d", i, got, want)
		}
	}
	neg := Flat(1000, -8, 8)
	if got := neg.Addr(2); got != 984 {
		t.Errorf("negative stride Addr(2) = %d, want 984", got)
	}
}

func TestMemPatternNestedMatchesManualLoop(t *testing.T) {
	// Property: a Nested pattern equals the manually computed two-level
	// loop address for arbitrary small trip counts and strides.
	f := func(innerN uint8, sIn, sOut int16, iter uint16) bool {
		in := int64(innerN%16) + 1
		p := Nested(1<<20, in, int64(sIn), int64(sOut), 8)
		i := int64(iter % 2048)
		want := uint64(int64(1<<20) + (i%in)*int64(sIn) + (i/in)*int64(sOut))
		return p.Addr(i) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuildProgramErrors(t *testing.T) {
	body := NewBody()
	body.Op(isa.IntALU, false, isa.R(isa.GP, 3), isa.R(isa.GP, 4))

	if _, err := BuildProgram(CodeBase, 0, body.Loop("l", 1)); err == nil {
		t.Error("repeat 0 accepted")
	}
	if _, err := BuildProgram(CodeBase, 1, Loop{Label: "empty", Iters: 1}); err == nil {
		t.Error("empty body accepted")
	}
	if _, err := BuildProgram(CodeBase, 1, body.Loop("l", -1)); err == nil {
		t.Error("negative trip count accepted")
	}
	// Iterating loop without trailing branch must be rejected.
	if _, err := BuildProgram(CodeBase, 1, body.Loop("l", 2)); err == nil {
		t.Error("branchless iterating loop accepted")
	}
	// Single iteration needs no branch.
	if _, err := BuildProgram(CodeBase, 1, body.Loop("l", 1)); err != nil {
		t.Errorf("straight-line loop rejected: %v", err)
	}
}

func TestProgramExpansion(t *testing.T) {
	b := NewBody()
	b.Load(isa.R(isa.FP, 1), false, Flat(DataBase, 8, 8))
	b.ScalarLoopEnd()
	prog := MustBuildProgram(CodeBase, 2, b.Loop("l", 3))

	if got := prog.StaticInsts(); got != 4 {
		t.Fatalf("StaticInsts = %d, want 4", got)
	}
	if got := prog.DynamicInsts(); got != 24 {
		t.Fatalf("DynamicInsts = %d, want 24", got)
	}

	s := prog.Stream()
	var insts []isa.Inst
	var in isa.Inst
	for s.Next(&in) {
		insts = append(insts, in)
	}
	if len(insts) != 24 {
		t.Fatalf("expanded %d instructions, want 24", len(insts))
	}
	// Load addresses advance per iteration and reset per repeat.
	wantAddrs := []uint64{DataBase, DataBase + 8, DataBase + 16, DataBase, DataBase + 8, DataBase + 16}
	for k, want := range wantAddrs {
		got := insts[k*4].Mem.Addr
		if got != want {
			t.Errorf("load %d addr = %#x, want %#x", k, got, want)
		}
	}
	// Loop-back branch: taken on iters 0,1, not taken on iter 2.
	for k := 0; k < 6; k++ {
		br := insts[k*4+3]
		if br.Op != isa.Branch {
			t.Fatalf("inst %d is %v, want branch", k*4+3, br.Op)
		}
		wantTaken := k%3 != 2
		if br.Branch.Taken != wantTaken {
			t.Errorf("branch %d taken = %v, want %v", k, br.Branch.Taken, wantTaken)
		}
		if !br.Branch.LoopBack {
			t.Errorf("branch %d not marked loop-back", k)
		}
		if br.Branch.Taken && br.Branch.Target != CodeBase {
			t.Errorf("branch %d target = %#x, want %#x", k, br.Branch.Target, CodeBase)
		}
	}
	// PCs are contiguous from CodeBase.
	for k, inst := range insts[:4] {
		if inst.PC != CodeBase+uint64(k*isa.InstBytes) {
			t.Errorf("inst %d PC = %#x", k, inst.PC)
		}
	}
	// Reset replays identically.
	s.Reset()
	var again isa.Inst
	for k := 0; s.Next(&again); k++ {
		if again != insts[k] {
			t.Fatalf("replay diverged at %d: %v vs %v", k, &again, &insts[k])
		}
	}
}

func TestProgramStreamDeterminism(t *testing.T) {
	for _, w := range TestSuite() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			s1, err := StreamFor(w, 256)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := StreamFor(w, 256)
			if err != nil {
				t.Fatal(err)
			}
			var a, b isa.Inst
			n := 0
			for {
				ok1 := s1.Next(&a)
				ok2 := s2.Next(&b)
				if ok1 != ok2 {
					t.Fatalf("streams desynchronised at %d", n)
				}
				if !ok1 {
					break
				}
				if a != b {
					t.Fatalf("instruction %d differs: %v vs %v", n, &a, &b)
				}
				n++
				if n > 500_000 {
					break
				}
			}
			if n == 0 {
				t.Fatal("empty stream")
			}
		})
	}
}

func TestDynamicInstsMatchesStream(t *testing.T) {
	for _, w := range TestSuite() {
		p, err := w.Program(512)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		if got := int64(isa.Count(p.Stream())); got != p.DynamicInsts() {
			t.Errorf("%s: stream count %d != DynamicInsts %d", w.Name(), got, p.DynamicInsts())
		}
	}
}

func TestVectorLengthAgnosticStreams(t *testing.T) {
	// Larger vectors must strictly shrink the dynamic stream of the
	// vectorised codes and leave the scalar codes nearly unchanged.
	for _, w := range TestSuite() {
		n128, err := streamLen(w, 128)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		n2048, err := streamLen(w, 2048)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		switch w.Name() {
		case NameSTREAM, NameMiniBUDE:
			if n2048 >= n128 {
				t.Errorf("%s: VL 2048 stream (%d) not shorter than VL 128 (%d)", w.Name(), n2048, n128)
			}
			if ratio := float64(n128) / float64(n2048); ratio < 4 {
				t.Errorf("%s: VL scaling ratio %.2f implausibly low", w.Name(), ratio)
			}
		case NameTeaLeaf, NameMiniSweep:
			if diff := float64(n128-n2048) / float64(n128); diff > 0.05 {
				t.Errorf("%s: scalar code shrank %.1f%% with VL", w.Name(), 100*diff)
			}
		}
	}
}

func streamLen(w Workload, vl int) (int64, error) {
	p, err := w.Program(vl)
	if err != nil {
		return 0, err
	}
	return p.DynamicInsts(), nil
}

func TestVectorisationPct(t *testing.T) {
	// The Fig. 1 property: STREAM and miniBUDE are highly vectorised,
	// TeaLeaf and MiniSweep poorly (compiler failure).
	for _, w := range TestSuite() {
		pct, err := VectorisationPct(w, 512)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		switch w.Name() {
		case NameSTREAM, NameMiniBUDE:
			if pct < 30 {
				t.Errorf("%s: vectorisation %.1f%%, want >= 30%%", w.Name(), pct)
			}
		case NameTeaLeaf, NameMiniSweep:
			if pct > 5 {
				t.Errorf("%s: vectorisation %.1f%%, want <= 5%%", w.Name(), pct)
			}
		}
	}
}

func TestFootprints(t *testing.T) {
	// STREAM's paper footprint is ~4.6 MiB (3 × 200k × 8B); the others are
	// cache-scale.
	s := NewSTREAM(PaperSTREAMInputs())
	if got := s.Footprint(); got < 4_700_000 || got > 5_000_000 {
		t.Errorf("STREAM paper footprint = %d, want ~4.8e6", got)
	}
	for _, w := range []Workload{
		NewMiniBUDE(PaperMiniBUDEInputs()),
		NewTeaLeaf(PaperTeaLeafInputs()),
		NewMiniSweep(PaperMiniSweepInputs()),
	} {
		if w.Footprint() <= 0 {
			t.Errorf("%s footprint = %d", w.Name(), w.Footprint())
		}
		if w.Footprint() > 1<<20 {
			t.Errorf("%s footprint %d unexpectedly above 1 MiB", w.Name(), w.Footprint())
		}
	}
}

func TestAddressesStayInDataSegment(t *testing.T) {
	for _, w := range TestSuite() {
		for _, vl := range []int{128, 2048} {
			s, err := StreamFor(w, vl)
			if err != nil {
				t.Fatalf("%s: %v", w.Name(), err)
			}
			lo := uint64(DataBase)
			hi := uint64(DataBase) + uint64(w.Footprint())
			var in isa.Inst
			n := 0
			for s.Next(&in) && n < 2_000_000 {
				n++
				if !in.Op.IsMem() {
					continue
				}
				if in.Mem.Addr < lo || in.Mem.Addr+uint64(in.Mem.Bytes) > hi {
					t.Fatalf("%s vl=%d: access [%#x,%d) outside data [%#x,%#x)",
						w.Name(), vl, in.Mem.Addr, in.Mem.Bytes, lo, hi)
				}
			}
		}
	}
}

func TestValidateAll(t *testing.T) {
	for _, w := range TestSuite() {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name(), err)
		}
	}
}

func TestValidatePaperSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale validation in -short mode")
	}
	for _, w := range PaperSuite() {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name(), err)
		}
	}
}

func TestWorkloadErrors(t *testing.T) {
	if _, err := NewSTREAM(STREAMInputs{}).Program(256); err == nil {
		t.Error("zero STREAM inputs accepted")
	}
	if _, err := NewMiniBUDE(MiniBUDEInputs{}).Program(256); err == nil {
		t.Error("zero miniBUDE inputs accepted")
	}
	if _, err := NewTeaLeaf(TeaLeafInputs{}).Program(256); err == nil {
		t.Error("zero TeaLeaf inputs accepted")
	}
	if _, err := NewMiniSweep(MiniSweepInputs{}).Program(256); err == nil {
		t.Error("zero MiniSweep inputs accepted")
	}
	if _, err := NewSTREAM(TestSTREAMInputs()).Program(100); err == nil {
		t.Error("invalid VL accepted")
	}
}

func TestByNameAndSuite(t *testing.T) {
	suite := TestSuite()
	if len(suite) != 4 {
		t.Fatalf("suite size = %d", len(suite))
	}
	names := AppNames()
	for i, w := range suite {
		if w.Name() != names[i] {
			t.Errorf("suite[%d] = %s, want %s", i, w.Name(), names[i])
		}
		if ByName(suite, names[i]) != w {
			t.Errorf("ByName(%s) returned wrong workload", names[i])
		}
	}
	if ByName(suite, "nope") != nil {
		t.Error("ByName of unknown name returned non-nil")
	}
}

func TestMiniSweepOctantDirections(t *testing.T) {
	m := NewMiniSweep(TestMiniSweepInputs())
	p, err := m.Program(256)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Loops) != 8 {
		t.Fatalf("octant loops = %d, want 8", len(p.Loops))
	}
	// Even octants walk psiIn forward, odd ones backward.
	firstLoadAddr := func(l *Loop, iter int64) uint64 {
		return l.Body[0].Pat.Addr(iter)
	}
	for i := range p.Loops {
		l := &p.Loops[i]
		a0 := firstLoadAddr(l, 0)
		a1 := firstLoadAddr(l, 1)
		if i%2 == 0 && a1 <= a0 {
			t.Errorf("octant %d should walk forward (%#x -> %#x)", i, a0, a1)
		}
		if i%2 == 1 && a1 >= a0 {
			t.Errorf("octant %d should walk backward (%#x -> %#x)", i, a0, a1)
		}
	}
}

func TestBodyBuilderShapes(t *testing.T) {
	b := NewBody()
	b.Load(isa.R(isa.FP, 1), true, Flat(DataBase, 64, 64))
	b.Op(isa.SVEFMA, true, isa.R(isa.FP, 2), isa.R(isa.FP, 1), isa.R(isa.FP, 3), isa.R(isa.FP, 2))
	b.Store(isa.R(isa.FP, 2), true, Flat(DataBase, 64, 64))
	b.SVELoopEnd()
	insts := b.Insts()
	if len(insts) != 6 {
		t.Fatalf("body len = %d, want 6", len(insts))
	}
	// SVE ops carry the governing predicate as a source.
	for i := 0; i < 3; i++ {
		found := false
		for _, s := range insts[i].Inst.SrcRegs() {
			if s.Class == isa.Pred {
				found = true
			}
		}
		if !found {
			t.Errorf("inst %d missing governing predicate", i)
		}
	}
	// WHILELO writes both the predicate and the flags.
	while := insts[4].Inst
	if while.Op != isa.PredOp || while.NDests != 2 {
		t.Errorf("whilelo shape wrong: %v", &while)
	}
	// Branch reads the flags.
	br := insts[5].Inst
	if br.Op != isa.Branch || br.NSrcs != 1 || br.Srcs[0].Class != isa.Cond {
		t.Errorf("branch shape wrong: %v", &br)
	}

	sc := NewBody()
	sc.Op(isa.IntALU, false, isa.R(isa.GP, 5), isa.R(isa.GP, 6))
	sc.ScalarLoopEnd()
	if sc.Len() != 4 {
		t.Errorf("scalar body len = %d, want 4", sc.Len())
	}
}

func TestSTREAMKernelStructure(t *testing.T) {
	s := NewSTREAM(STREAMInputs{ArraySize: 64, Times: 2})
	p, err := s.Program(512) // epv = 8 -> 8 iterations per kernel
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Loops) != 4 {
		t.Fatalf("kernel loops = %d, want 4", len(p.Loops))
	}
	wantLabels := []string{"copy", "scale", "add", "triad"}
	for i, l := range p.Loops {
		if l.Label != wantLabels[i] {
			t.Errorf("loop %d label = %q, want %q", i, l.Label, wantLabels[i])
		}
		if l.Iters != 8 {
			t.Errorf("loop %q iters = %d, want 8", l.Label, l.Iters)
		}
	}
	if p.Repeat != 2 {
		t.Errorf("repeat = %d, want 2", p.Repeat)
	}
	// Triad moves 3 vectors of VL bits per iteration: 2 loads + 1 store.
	triad := p.Loops[3]
	var loads, stores int
	for _, ti := range triad.Body {
		switch ti.Inst.Op {
		case isa.Load:
			loads++
			if ti.Pat.Bytes != 64 {
				t.Errorf("triad load width = %d, want 64", ti.Pat.Bytes)
			}
		case isa.Store:
			stores++
		}
	}
	if loads != 2 || stores != 1 {
		t.Errorf("triad loads/stores = %d/%d, want 2/1", loads, stores)
	}
}

func TestTeaLeafSolverVariants(t *testing.T) {
	in := TestTeaLeafInputs()

	cg := NewTeaLeaf(in)
	inJ := in
	inJ.Solver = SolverJacobi
	jac := NewTeaLeaf(inJ)
	inC := in
	inC.Solver = SolverCheby
	chb := NewTeaLeaf(inC)

	nCG, err := streamLen(cg, 256)
	if err != nil {
		t.Fatal(err)
	}
	nJ, err := streamLen(jac, 256)
	if err != nil {
		t.Fatal(err)
	}
	nC, err := streamLen(chb, 256)
	if err != nil {
		t.Fatal(err)
	}
	// CG does the most work per iteration (matvec + 2 dots + 3 axpys),
	// Chebyshev drops the dots and one axpy, Jacobi is leaner still.
	if !(nCG > nC && nC > nJ) {
		t.Errorf("instruction ordering: cg=%d cheby=%d jacobi=%d", nCG, nC, nJ)
	}

	// Jacobi has no loop-carried accumulator: no FP instruction reads a
	// register it also writes *before any earlier write in the body*
	// (which is what makes CG's dot-product FMA a serial chain).
	hasLoopCarried := func(body []TemplInst) bool {
		written := map[isa.Reg]bool{}
		for _, ti := range body {
			in := ti.Inst
			for _, src := range in.SrcRegs() {
				if src.Class != isa.FP || written[src] {
					continue
				}
				for _, d := range in.DestRegs() {
					if d == src {
						return true
					}
				}
			}
			for _, d := range in.DestRegs() {
				written[d] = true
			}
		}
		return false
	}
	pJ, err := jac.Program(256)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range pJ.Loops {
		if l.Label == "jacobi" && hasLoopCarried(l.Body) {
			t.Error("jacobi body contains a loop-carried reduction")
		}
	}
	// ...while CG's dot loops do carry one (sanity check of the checker).
	pCG, err := cg.Program(256)
	if err != nil {
		t.Fatal(err)
	}
	foundDot := false
	for _, l := range pCG.Loops {
		if l.Label == "dot_pw" {
			foundDot = true
			if !hasLoopCarried(l.Body) {
				t.Error("cg dot loop lost its reduction chain")
			}
		}
	}
	if !foundDot {
		t.Error("cg program missing dot loop")
	}

	// Solver names render as the mini-app spells them.
	if SolverCG.String() != "cg" || SolverJacobi.String() != "jacobi" || SolverCheby.String() != "cheby" {
		t.Error("solver names wrong")
	}

	// All three validate (Jacobi via its own reference path).
	for _, w := range []Workload{cg, jac, chb} {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.(*TeaLeaf).Inputs().Solver, err)
		}
	}
}

func TestTeaLeafSolversSimulate(t *testing.T) {
	// All solver variants run to completion on the engine (via the
	// facade-level integration done elsewhere; here just check streams
	// stay in bounds).
	for _, solver := range []TeaLeafSolver{SolverCG, SolverJacobi, SolverCheby} {
		in := TestTeaLeafInputs()
		in.Solver = solver
		w := NewTeaLeaf(in)
		s, err := StreamFor(w, 512)
		if err != nil {
			t.Fatal(err)
		}
		lo := uint64(DataBase)
		hi := uint64(DataBase) + uint64(w.Footprint())
		var inst isa.Inst
		for s.Next(&inst) {
			if inst.Op.IsMem() && (inst.Mem.Addr < lo || inst.Mem.Addr+uint64(inst.Mem.Bytes) > hi) {
				t.Fatalf("%v: access out of bounds", solver)
			}
		}
	}
}
