package workload

import "armdse/internal/isa"

// Conventional register roles used by the kernel builders. Generators keep
// architectural register usage inside the real file sizes (31 GP, 32 Z, 16 P)
// so renaming behaviour is realistic.
var (
	// idxReg is the loop induction variable.
	idxReg = isa.R(isa.GP, 1)
	// boundReg holds the loop trip bound.
	boundReg = isa.R(isa.GP, 2)
	// nzcv is the condition flags register.
	nzcv = isa.R(isa.Cond, 0)
	// loopPred is the governing predicate of SVE loops.
	loopPred = isa.R(isa.Pred, 0)
)

// Body incrementally assembles a loop body.
type Body struct {
	insts []TemplInst
}

// NewBody returns an empty body builder.
func NewBody() *Body { return &Body{} }

// Insts returns the assembled body.
func (b *Body) Insts() []TemplInst { return b.insts }

// Len returns the current body length in instructions.
func (b *Body) Len() int { return len(b.insts) }

// Load appends a load of pat into dst. sve marks a Z-destination vector load;
// the governing predicate is a source for SVE loads, the induction register
// is always an address source.
func (b *Body) Load(dst isa.Reg, sve bool, pat MemPattern) {
	var in isa.Inst
	in.Op = isa.Load
	in.SVE = sve
	in.AddDest(dst)
	in.AddSrc(idxReg)
	if sve {
		in.AddSrc(loopPred)
	}
	b.insts = append(b.insts, TemplInst{Inst: in, Pat: pat})
}

// Store appends a store of src to pat.
func (b *Body) Store(src isa.Reg, sve bool, pat MemPattern) {
	var in isa.Inst
	in.Op = isa.Store
	in.SVE = sve
	in.AddSrc(src)
	in.AddSrc(idxReg)
	if sve {
		in.AddSrc(loopPred)
	}
	b.insts = append(b.insts, TemplInst{Inst: in, Pat: pat})
}

// Op appends a register-to-register operation of group g writing dst from
// srcs. sve marks Z-register (vector) operations; vector ops are additionally
// governed by the loop predicate.
func (b *Body) Op(g isa.Group, sve bool, dst isa.Reg, srcs ...isa.Reg) {
	var in isa.Inst
	in.Op = g
	in.SVE = sve
	in.AddDest(dst)
	for _, s := range srcs {
		in.AddSrc(s)
	}
	if sve {
		in.AddSrc(loopPred)
	}
	b.insts = append(b.insts, TemplInst{Inst: in})
}

// SVELoopEnd appends the three-instruction SVE vector-length-agnostic loop
// control sequence: INCW idx; WHILELO p0, idx, bound; B.FIRST — exactly the
// tail the Arm compiler emits for scalable loops.
func (b *Body) SVELoopEnd() {
	var inc isa.Inst
	inc.Op = isa.IntALU
	inc.AddDest(idxReg)
	inc.AddSrc(idxReg)
	b.insts = append(b.insts, TemplInst{Inst: inc})

	var while isa.Inst
	while.Op = isa.PredOp
	while.AddDest(loopPred)
	while.AddDest(nzcv)
	while.AddSrc(idxReg)
	while.AddSrc(boundReg)
	b.insts = append(b.insts, TemplInst{Inst: while})

	var br isa.Inst
	br.Op = isa.Branch
	br.AddSrc(nzcv)
	b.insts = append(b.insts, TemplInst{Inst: br})
}

// ScalarLoopEnd appends the scalar loop control sequence: ADD idx; CMP idx,
// bound; B.LT.
func (b *Body) ScalarLoopEnd() {
	var inc isa.Inst
	inc.Op = isa.IntALU
	inc.AddDest(idxReg)
	inc.AddSrc(idxReg)
	b.insts = append(b.insts, TemplInst{Inst: inc})

	var cmp isa.Inst
	cmp.Op = isa.IntALU
	cmp.AddDest(nzcv)
	cmp.AddSrc(idxReg)
	cmp.AddSrc(boundReg)
	b.insts = append(b.insts, TemplInst{Inst: cmp})

	var br isa.Inst
	br.Op = isa.Branch
	br.AddSrc(nzcv)
	b.insts = append(b.insts, TemplInst{Inst: br})
}

// Loop wraps the body into a Loop with the given label and trip count.
func (b *Body) Loop(label string, iters int64) Loop {
	return Loop{Label: label, Body: b.insts, Iters: iters}
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }
