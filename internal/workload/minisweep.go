package workload

import (
	"fmt"
	"math"

	"armdse/internal/isa"
)

// MiniSweepInputs mirrors Table IV's MiniSweep row: a deterministic Sn
// radiation-transport sweep over an NX×NY×NZ gridcell block with Angles
// angles per octant direction, Groups energy groups, and Sweeps sweep
// iterations (the Z dimension is tiled by one block, as in the paper).
type MiniSweepInputs struct {
	NX, NY, NZ int64
	Angles     int64
	Groups     int64
	Sweeps     int64
}

// PaperMiniSweepInputs returns Table IV's values: 4×4×4 cells, 32 angles per
// octant, one sweep iteration.
func PaperMiniSweepInputs() MiniSweepInputs {
	return MiniSweepInputs{NX: 4, NY: 4, NZ: 4, Angles: 32, Groups: 1, Sweeps: 1}
}

// TestMiniSweepInputs returns a scaled configuration for tests and benches.
func TestMiniSweepInputs() MiniSweepInputs {
	return MiniSweepInputs{NX: 4, NY: 4, NZ: 4, Angles: 8, Groups: 1, Sweeps: 1}
}

// MiniSweep models the deterministic radiation-transport sweep mini-app. On a
// single core it is compute bound (§V-B cites its relatively high arithmetic
// intensity), and like TeaLeaf the compiler fails to vectorise it, so its
// stream is scalar and its vector-length sensitivity should be negligible.
type MiniSweep struct {
	in MiniSweepInputs

	psiIn, psiOut, faceX, faceY, faceZ, vols uint64
	foot                                     int64
}

// NewMiniSweep builds the MiniSweep workload.
func NewMiniSweep(in MiniSweepInputs) *MiniSweep {
	al := newAlloc()
	m := &MiniSweep{in: in}
	cells := in.NX * in.NY * in.NZ
	per := cells * in.Angles * in.Groups * 8
	m.psiIn = al.array(per)
	m.psiOut = al.array(per)
	m.faceX = al.array(in.NY * in.NZ * in.Angles * 8)
	m.faceY = al.array(in.NX * in.NZ * in.Angles * 8)
	m.faceZ = al.array(in.NX * in.NY * in.Angles * 8)
	m.vols = al.array(cells * 8)
	m.foot = al.used()
	return m
}

// Name implements Workload.
func (m *MiniSweep) Name() string { return NameMiniSweep }

// Footprint implements Workload.
func (m *MiniSweep) Footprint() int64 { return m.foot }

// Inputs returns the constructor inputs.
func (m *MiniSweep) Inputs() MiniSweepInputs { return m.in }

// Program implements Workload. Each octant is one flattened loop over
// (cell × angle × group); per iteration the kernel loads the incoming flux
// and the three upwind face fluxes, applies the diamond-difference update,
// stores the three outgoing faces and the outgoing flux, and folds the
// result into a serial accumulator — matching the real kernel's mix of ~9
// flops against 4 loads/4 stores. Octants walk the cells in opposing
// directions, flipping the face-array traversal sign.
func (m *MiniSweep) Program(vl int) (*Program, error) {
	if err := CheckVL(vl); err != nil {
		return nil, err
	}
	if m.in.NX <= 0 || m.in.NY <= 0 || m.in.NZ <= 0 || m.in.Angles <= 0 || m.in.Groups <= 0 || m.in.Sweeps <= 0 {
		return nil, fmt.Errorf("MiniSweep: non-positive inputs %+v", m.in)
	}
	cells := m.in.NX * m.in.NY * m.in.NZ
	inner := m.in.Angles * m.in.Groups // per-cell work items
	perOct := cells * inner

	d := func(i int) isa.Reg { return isa.R(isa.FP, i) }
	// Angle cosines and sigma are register-resident per octant.
	mux, muy, muz, sigma := d(20), d(21), d(22), d(23)
	acc := d(28)

	loops := make([]Loop, 0, 8)
	for oct := 0; oct < 8; oct++ {
		// Octants 1,3,5,7 sweep the cell dimension backwards: their
		// traversal starts at the last element and strides negatively.
		dir := int64(1)
		if oct%2 == 1 {
			dir = -1
		}
		cellPat := func(arr uint64) MemPattern {
			base := arr
			if dir < 0 {
				base += uint64((perOct - 1) * 8)
			}
			return Flat(base, dir*8, 8)
		}
		facePat := func(arr uint64) MemPattern {
			// Faces are indexed by (transverse position, angle); the
			// per-plane reuse shows up as the InnerN wrap.
			base := arr
			if dir < 0 {
				base += uint64((inner - 1) * 8)
			}
			return Nested(base, inner, dir*8, 0, 8)
		}

		b := NewBody()
		b.Load(d(1), false, cellPat(m.psiIn)) // incoming flux
		b.Load(d(2), false, facePat(m.faceX)) // upwind X face
		b.Load(d(3), false, facePat(m.faceY)) // upwind Y face
		b.Load(d(4), false, facePat(m.faceZ)) // upwind Z face
		// Diamond-difference numerator: q + mux*fx + muy*fy + muz*fz.
		b.Op(isa.FPMul, false, d(10), d(2), mux)
		b.Op(isa.FPFMA, false, d(10), d(3), muy, d(10))
		b.Op(isa.FPFMA, false, d(10), d(4), muz, d(10))
		b.Op(isa.FPAdd, false, d(10), d(10), d(1))
		// psi = numerator * 1/(sigma + 2mux + 2muy + 2muz); the reciprocal
		// is precomputed per octant, so this is a multiply.
		b.Op(isa.FPMul, false, d(11), d(10), sigma)
		// Outgoing faces: f' = 2*psi - f.
		b.Op(isa.FPFMA, false, d(12), d(11), mux, d(2))
		b.Op(isa.FPFMA, false, d(13), d(11), muy, d(3))
		b.Op(isa.FPFMA, false, d(14), d(11), muz, d(4))
		b.Op(isa.FPFMA, false, acc, d(11), mux, acc) // scalar flux fold
		b.Store(d(12), false, facePat(m.faceX))
		b.Store(d(13), false, facePat(m.faceY))
		b.Store(d(14), false, facePat(m.faceZ))
		b.Store(d(11), false, cellPat(m.psiOut))
		b.ScalarLoopEnd()

		loops = append(loops, b.Loop(fmt.Sprintf("octant%d", oct), perOct))
	}
	return BuildProgram(CodeBase, m.in.Sweeps, loops...)
}

// sweepRef runs the reference diamond-difference sweep for one octant
// ordering and returns the final per-cell scalar flux. order must be a
// permutation of the cell indices respecting the octant's upwind direction.
func (m *MiniSweep) sweepRef(angleMajor bool) []float64 {
	nx, ny, nz := int(m.in.NX), int(m.in.NY), int(m.in.NZ)
	na := int(m.in.Angles)
	cells := nx * ny * nz
	flux := make([]float64, cells)
	idx := func(x, y, z int) int { return (z*ny+y)*nx + x }

	for oct := 0; oct < 8; oct++ {
		sx, sy, sz := 1, 1, 1
		if oct&1 != 0 {
			sx = -1
		}
		if oct&2 != 0 {
			sy = -1
		}
		if oct&4 != 0 {
			sz = -1
		}
		run := func(a int) {
			fa := float64(a + 1)
			mux := 0.3 + 0.5*fa/float64(na)
			muy := 0.2 + 0.4*fa/float64(na)
			muz := 0.1 + 0.3*fa/float64(na)
			sigma := 1.0 + 0.1*fa
			denomInv := 1 / (sigma + 2*(mux+muy+muz))
			faceX := make([]float64, ny*nz)
			faceY := make([]float64, nx*nz)
			faceZ := make([]float64, nx*ny)
			for i := range faceX {
				faceX[i] = 1
			}
			for i := range faceY {
				faceY[i] = 1
			}
			for i := range faceZ {
				faceZ[i] = 1
			}
			xs, ys, zs := 0, 0, 0
			if sx < 0 {
				xs = nx - 1
			}
			if sy < 0 {
				ys = ny - 1
			}
			if sz < 0 {
				zs = nz - 1
			}
			for kz, z := 0, zs; kz < nz; kz, z = kz+1, z+sz {
				for ky, y := 0, ys; ky < ny; ky, y = ky+1, y+sy {
					for kx, x := 0, xs; kx < nx; kx, x = kx+1, x+sx {
						c := idx(x, y, z)
						q := 1.0 + 0.01*float64(c)
						fx := faceX[z*ny+y]
						fy := faceY[z*nx+x]
						fz := faceZ[y*nx+x]
						psi := (q + mux*fx + muy*fy + muz*fz) * denomInv
						faceX[z*ny+y] = 2*psi - fx
						faceY[z*nx+x] = 2*psi - fy
						faceZ[y*nx+x] = 2*psi - fz
						flux[c] += mux * psi
					}
				}
			}
		}
		if angleMajor {
			for a := 0; a < na; a++ {
				run(a)
			}
		} else {
			// Same computation with the angle loop distributed; the
			// per-angle state is independent so results must agree.
			for a := na - 1; a >= 0; a-- {
				run(a)
			}
		}
	}
	return flux
}

// Validate implements Workload: angle-major and reversed-angle evaluations of
// the sweep must agree (per-angle state is independent), and the
// scalar flux must be finite and positive, as transport physics requires.
func (m *MiniSweep) Validate() error {
	if m.in.NX <= 0 || m.in.NY <= 0 || m.in.NZ <= 0 {
		return fmt.Errorf("MiniSweep: non-positive grid %+v", m.in)
	}
	f1 := m.sweepRef(true)
	f2 := m.sweepRef(false)
	for i := range f1 {
		// The two orders commute the flux accumulation, so agreement is
		// up to floating-point reassociation error.
		if diff := math.Abs(f1[i] - f2[i]); diff > 1e-10*(1+math.Abs(f1[i])) {
			return fmt.Errorf("MiniSweep validation: loop orders disagree at cell %d: %g vs %g", i, f1[i], f2[i])
		}
		if math.IsNaN(f1[i]) || math.IsInf(f1[i], 0) || f1[i] <= 0 {
			return fmt.Errorf("MiniSweep validation: unphysical flux %g at cell %d", f1[i], i)
		}
	}
	return nil
}
