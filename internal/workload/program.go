package workload

import (
	"fmt"

	"armdse/internal/isa"
)

// TemplInst is one static instruction of a loop body: an isa.Inst template
// plus the address pattern that instantiates its memory access per iteration.
type TemplInst struct {
	Inst isa.Inst
	Pat  MemPattern
}

// Loop is one innermost loop: a static body executed Iters times. If Iters is
// greater than one, the last body instruction must be the loop-back branch
// (the expansion patches its taken/target fields per iteration). A Loop with
// Iters == 1 models straight-line code.
type Loop struct {
	// Label names the loop for diagnostics ("triad", "cg_dot1"...).
	Label string
	// Body is the static instruction sequence.
	Body []TemplInst
	// Iters is the trip count.
	Iters int64

	basePC uint64
}

// BasePC returns the byte PC of the loop's first instruction once the
// containing program has been built.
func (l *Loop) BasePC() uint64 { return l.basePC }

// Program is a sequence of loops executed in order, with the whole sequence
// repeated Repeat times (an outer timestep loop). Static PCs are laid out
// contiguously across loops so fetch-block and loop-buffer behaviour sees a
// realistic code footprint.
type Program struct {
	Loops  []Loop
	Repeat int64
}

// BuildProgram lays out PCs and validates loop structure. The code segment
// starts at codeBase (typically CodeBase).
func BuildProgram(codeBase uint64, repeat int64, loops ...Loop) (*Program, error) {
	if repeat < 1 {
		return nil, fmt.Errorf("workload: repeat %d < 1", repeat)
	}
	pc := codeBase
	for i := range loops {
		l := &loops[i]
		if len(l.Body) == 0 {
			return nil, fmt.Errorf("workload: loop %q has empty body", l.Label)
		}
		if l.Iters < 0 {
			return nil, fmt.Errorf("workload: loop %q has negative trip count %d", l.Label, l.Iters)
		}
		if l.Iters > 1 && l.Body[len(l.Body)-1].Inst.Op != isa.Branch {
			return nil, fmt.Errorf("workload: loop %q iterates %d times but does not end in a branch", l.Label, l.Iters)
		}
		l.basePC = pc
		pc += uint64(len(l.Body) * isa.InstBytes)
	}
	return &Program{Loops: loops, Repeat: repeat}, nil
}

// MustBuildProgram is BuildProgram panicking on error, for generators whose
// structure is statically correct.
func MustBuildProgram(codeBase uint64, repeat int64, loops ...Loop) *Program {
	p, err := BuildProgram(codeBase, repeat, loops...)
	if err != nil {
		panic(err)
	}
	return p
}

// StaticInsts returns the static code size in instructions.
func (p *Program) StaticInsts() int {
	n := 0
	for i := range p.Loops {
		n += len(p.Loops[i].Body)
	}
	return n
}

// DynamicInsts returns the total dynamic instruction count of one full run.
func (p *Program) DynamicInsts() int64 {
	var n int64
	for i := range p.Loops {
		n += int64(len(p.Loops[i].Body)) * p.Loops[i].Iters
	}
	return n * p.Repeat
}

// Stream returns a fresh instruction stream over the program.
func (p *Program) Stream() isa.Stream { return &progStream{prog: p} }

// Stats summarises the program's full dynamic stream for analytical models.
// The walk is a full trace expansion (same cost as one Materialize pass);
// callers that evaluate many configurations against one program should cache
// the result per (application, vector length) — the orchestrate program
// cache does exactly that.
func (p *Program) Stats() isa.StreamStats {
	return isa.CollectStreamStats(p.Stream())
}

// DefaultMaterializeLimit is the largest dynamic instruction count Materialize
// will expand by default: ~88 MB of arena at 88 bytes per instruction. The
// full paper-scale programs (tens of millions of instructions) stay on the
// lazy stream; the collection-sweep programs fit comfortably.
const DefaultMaterializeLimit = 1 << 20

// Materialize expands the program's full dynamic trace into a flat
// instruction slice, or returns nil if the trace exceeds limit instructions
// (limit <= 0 means DefaultMaterializeLimit).
//
// The returned arena is READ-ONLY by contract: it is built once per
// (program, vector-length) and then shared by every configuration's run
// concurrently, each replaying it through its own isa.SliceStream cursor.
// Callers must never mutate the returned slice or hand it to anything that
// does. The trace is byte-identical to what Stream produces — the
// pooled-vs-fresh differential tests pin that.
func (p *Program) Materialize(limit int64) []isa.Inst {
	if limit <= 0 {
		limit = DefaultMaterializeLimit
	}
	n := p.DynamicInsts()
	if n > limit {
		return nil
	}
	out := make([]isa.Inst, 0, n)
	s := progStream{prog: p}
	var in isa.Inst
	for s.Next(&in) {
		out = append(out, in)
	}
	return out
}

// progStream lazily expands a Program into dynamic instructions.
type progStream struct {
	prog *Program
	rep  int64
	seg  int
	iter int64
	idx  int
}

// Next implements isa.Stream.
func (s *progStream) Next(out *isa.Inst) bool {
	for {
		if s.rep >= s.prog.Repeat {
			return false
		}
		if s.seg >= len(s.prog.Loops) {
			s.seg = 0
			s.rep++
			continue
		}
		l := &s.prog.Loops[s.seg]
		if s.iter >= l.Iters {
			s.iter = 0
			s.seg++
			continue
		}
		ti := &l.Body[s.idx]
		*out = ti.Inst
		out.PC = l.basePC + uint64(s.idx*isa.InstBytes)
		if out.Op.IsMem() {
			out.Mem.Addr = ti.Pat.Addr(s.iter)
			out.Mem.Bytes = ti.Pat.Bytes
		}
		if out.Op == isa.Branch && s.idx == len(l.Body)-1 && l.Iters > 1 {
			out.Branch = isa.BranchInfo{
				Taken:    s.iter < l.Iters-1,
				Target:   l.basePC,
				LoopBack: true,
			}
		}
		s.idx++
		if s.idx >= len(l.Body) {
			s.idx = 0
			s.iter++
		}
		return true
	}
}

// Reset implements isa.Stream.
func (s *progStream) Reset() { s.rep, s.seg, s.iter, s.idx = 0, 0, 0, 0 }
