// Package workload generates the dynamic instruction streams of the four HPC
// codes the paper studies — STREAM, miniBUDE, TeaLeaf and MiniSweep — as
// vector-length-agnostic programs: for a given application input, the stream
// is a pure function of the SVE vector length alone, mirroring the paper's
// -msve-vector-bits=scalable compilation. Every other micro-architectural
// parameter must win performance through instruction-level parallelism, which
// is the study's central "equivalent code execution" assumption (§IV-A).
//
// Each workload also carries a functional reference implementation in plain
// Go; Validate runs it against analytically expected results, standing in for
// the mini-apps' built-in validation that gates the paper's accepted runs.
package workload

// MemPattern computes the byte address of a templated memory access for a
// given loop iteration. It supports flat strided traversals and two-level
// (inner × outer) traversals, which is enough to express the row-major,
// stencil-neighbour and wavefront access patterns of the four codes:
//
//	InnerN == 0: addr(i) = Base + i*StrideIn
//	InnerN  > 0: addr(i) = Base + (i%InnerN)*StrideIn + (i/InnerN)*StrideOut
type MemPattern struct {
	// Base is the first-iteration byte address.
	Base uint64
	// Bytes is the access width (VL/8 for SVE accesses).
	Bytes uint32
	// StrideIn is the per-iteration (or per-inner-iteration) byte stride.
	StrideIn int64
	// InnerN, when positive, is the inner trip count of a flattened
	// two-level loop.
	InnerN int64
	// StrideOut is the byte stride applied once per inner-loop wrap.
	StrideOut int64
}

// Flat returns a single-level strided pattern.
func Flat(base uint64, stride int64, bytes uint32) MemPattern {
	return MemPattern{Base: base, StrideIn: stride, Bytes: bytes}
}

// Fixed returns a loop-invariant pattern (the same address every iteration).
func Fixed(base uint64, bytes uint32) MemPattern {
	return MemPattern{Base: base, Bytes: bytes}
}

// Nested returns a two-level pattern over a flattened loop nest with inner
// trip count innerN.
func Nested(base uint64, innerN, strideIn, strideOut int64, bytes uint32) MemPattern {
	return MemPattern{Base: base, Bytes: bytes, StrideIn: strideIn, InnerN: innerN, StrideOut: strideOut}
}

// Addr returns the byte address for flattened iteration iter.
func (p MemPattern) Addr(iter int64) uint64 {
	if p.InnerN > 0 {
		return uint64(int64(p.Base) + (iter%p.InnerN)*p.StrideIn + (iter/p.InnerN)*p.StrideOut)
	}
	return uint64(int64(p.Base) + iter*p.StrideIn)
}
