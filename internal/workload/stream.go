package workload

import (
	"fmt"
	"math"

	"armdse/internal/isa"
)

// STREAMInputs mirrors Table IV's STREAM row: a single-threaded OpenMP run
// over arrays of ArraySize float64 elements, with Times passes over the four
// kernels (Copy, Scale, Add, Triad).
type STREAMInputs struct {
	// ArraySize is the element count of each of the three arrays.
	ArraySize int64
	// Times is the number of passes over the four kernels.
	Times int64
}

// PaperSTREAMInputs returns the paper's input: 200,000 elements (4.6 MiB
// across the three arrays) with STREAM's standard NTIMES=10 kernel passes,
// which also lands the ThunderX2 cycle count in the paper's Table I
// magnitude (tens of millions of cycles).
func PaperSTREAMInputs() STREAMInputs { return STREAMInputs{ArraySize: 200_000, Times: 10} }

// TestSTREAMInputs returns a scaled input (25,000 elements, 600 KiB total)
// that still straddles the study's L2 size range, so the L2-vs-RAM residency
// crossover the paper highlights for STREAM survives the scaling.
func TestSTREAMInputs() STREAMInputs { return STREAMInputs{ArraySize: 25_000, Times: 1} }

// STREAM is McCalpin's sustained-memory-bandwidth benchmark: the archetypal
// heavily memory-bound, perfectly vectorisable code of the study.
type STREAM struct {
	in STREAMInputs

	a, b, c uint64 // array base addresses
	foot    int64
}

// NewSTREAM builds the STREAM workload.
func NewSTREAM(in STREAMInputs) *STREAM {
	al := newAlloc()
	bytes := in.ArraySize * 8
	s := &STREAM{in: in}
	s.a = al.array(bytes)
	s.b = al.array(bytes)
	s.c = al.array(bytes)
	s.foot = al.used()
	return s
}

// Name implements Workload.
func (s *STREAM) Name() string { return NameSTREAM }

// Footprint implements Workload.
func (s *STREAM) Footprint() int64 { return s.foot }

// Inputs returns the constructor inputs.
func (s *STREAM) Inputs() STREAMInputs { return s.in }

// scalar constant register (broadcast multiplier q) for Scale/Triad.
var streamScalar = isa.R(isa.FP, 31)

// Program implements Workload. Each kernel is one SVE vector-length-agnostic
// loop; at vector length vl each iteration moves vl/8 bytes per access.
func (s *STREAM) Program(vl int) (*Program, error) {
	if err := CheckVL(vl); err != nil {
		return nil, err
	}
	if s.in.ArraySize <= 0 || s.in.Times <= 0 {
		return nil, fmt.Errorf("STREAM: non-positive inputs %+v", s.in)
	}
	epv := int64(vl / 64) // 64-bit elements per vector
	iters := ceilDiv(s.in.ArraySize, epv)
	vb := uint32(vl / 8)    // access bytes
	stride := int64(vl / 8) // bytes per iteration

	z0, z1, z2, z3 := isa.R(isa.FP, 0), isa.R(isa.FP, 1), isa.R(isa.FP, 2), isa.R(isa.FP, 3)

	// Copy: c[j] = a[j]
	copyB := NewBody()
	copyB.Load(z1, true, Flat(s.a, stride, vb))
	copyB.Store(z1, true, Flat(s.c, stride, vb))
	copyB.SVELoopEnd()

	// Scale: b[j] = q*c[j]
	scaleB := NewBody()
	scaleB.Load(z1, true, Flat(s.c, stride, vb))
	scaleB.Op(isa.SVEMul, true, z2, z1, streamScalar)
	scaleB.Store(z2, true, Flat(s.b, stride, vb))
	scaleB.SVELoopEnd()

	// Add: c[j] = a[j] + b[j]
	addB := NewBody()
	addB.Load(z1, true, Flat(s.a, stride, vb))
	addB.Load(z2, true, Flat(s.b, stride, vb))
	addB.Op(isa.SVEAdd, true, z3, z1, z2)
	addB.Store(z3, true, Flat(s.c, stride, vb))
	addB.SVELoopEnd()

	// Triad: a[j] = b[j] + q*c[j]
	triadB := NewBody()
	triadB.Load(z1, true, Flat(s.b, stride, vb))
	triadB.Load(z2, true, Flat(s.c, stride, vb))
	triadB.Op(isa.SVEFMA, true, z0, z1, z2, streamScalar)
	triadB.Store(z0, true, Flat(s.a, stride, vb))
	triadB.SVELoopEnd()

	return BuildProgram(CodeBase, s.in.Times,
		copyB.Loop("copy", iters),
		scaleB.Loop("scale", iters),
		addB.Loop("add", iters),
		triadB.Loop("triad", iters),
	)
}

// Validate implements Workload: it runs the reference float64 kernels and
// applies STREAM's standard solution check (closed-form expected values after
// the kernel sequence).
func (s *STREAM) Validate() error {
	n := s.in.ArraySize
	if n <= 0 {
		return fmt.Errorf("STREAM: non-positive array size %d", n)
	}
	// Keep validation memory bounded; the check is input-size independent.
	if n > 1_000_000 {
		n = 1_000_000
	}
	const q = 3.0
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		a[i], b[i], c[i] = 1.0, 2.0, 0.0
	}
	for t := int64(0); t < s.in.Times; t++ {
		for i := range c {
			c[i] = a[i]
		}
		for i := range b {
			b[i] = q * c[i]
		}
		for i := range c {
			c[i] = a[i] + b[i]
		}
		for i := range a {
			a[i] = b[i] + q*c[i]
		}
	}
	// Closed-form expectation, exactly as stream.c computes it.
	ea, eb, ec := 1.0, 2.0, 0.0
	for t := int64(0); t < s.in.Times; t++ {
		ec = ea
		eb = q * ec
		ec = ea + eb
		ea = eb + q*ec
	}
	for i := range a {
		if math.Abs(a[i]-ea) > 1e-8 || math.Abs(b[i]-eb) > 1e-8 || math.Abs(c[i]-ec) > 1e-8 {
			return fmt.Errorf("STREAM validation failed at %d: got (%g,%g,%g) want (%g,%g,%g)",
				i, a[i], b[i], c[i], ea, eb, ec)
		}
	}
	return nil
}
