package workload

import (
	"fmt"
	"math"

	"armdse/internal/isa"
)

// TeaLeafInputs mirrors Table IV's TeaLeaf row: a 2D linear heat-conduction
// solve on an NX×NY grid using a Conjugate Gradient solver, run for Steps
// timesteps with CGIters solver iterations per step. The paper caps CG at
// 10,000 iterations; real runs converge in a few tens, and the trace uses a
// fixed representative count so that the instruction stream is deterministic.
type TeaLeafInputs struct {
	NX, NY  int64
	Steps   int64
	CGIters int64
	// Dt is the timestep (Table IV: 0.004); only the functional reference
	// uses it — the trace shape is independent of the value.
	Dt float64
	// Solver selects the iterative method, as the real mini-app's
	// tea.in "tl_use_*" options do: SolverCG (the paper's Table IV
	// choice and the default), SolverJacobi or SolverCheby.
	Solver TeaLeafSolver
}

// TeaLeafSolver is the linear-solver family of a TeaLeaf run.
type TeaLeafSolver uint8

const (
	// SolverCG is the conjugate-gradient solver the paper runs.
	SolverCG TeaLeafSolver = iota
	// SolverJacobi is the Jacobi iteration: no dot-product reductions, so
	// every loop has independent iterations (more ILP, more traffic).
	SolverJacobi
	// SolverCheby is a Chebyshev iteration: matvec plus AXPYs with
	// precomputed scalars, no reductions after the first step.
	SolverCheby
)

// String returns the solver name as the mini-app's configuration spells it.
func (s TeaLeafSolver) String() string {
	switch s {
	case SolverJacobi:
		return "jacobi"
	case SolverCheby:
		return "cheby"
	default:
		return "cg"
	}
}

// PaperTeaLeafInputs returns Table IV's values: 32×32 cells, 5 end steps,
// dt 0.004, CG solver.
func PaperTeaLeafInputs() TeaLeafInputs {
	return TeaLeafInputs{NX: 32, NY: 32, Steps: 5, CGIters: 30, Dt: 0.004}
}

// TestTeaLeafInputs returns a scaled configuration for tests and benches.
func TestTeaLeafInputs() TeaLeafInputs {
	return TeaLeafInputs{NX: 16, NY: 16, Steps: 2, CGIters: 8, Dt: 0.004}
}

// TeaLeaf models the TeaLeaf heat-conduction mini-app: a memory-access-heavy
// 5-point stencil CG solve that the Arm compiler fails to vectorise (§IV-A),
// so its stream is almost entirely scalar and its performance is dominated by
// cache latency — the paper finds L1 parameters top its importance ranking.
type TeaLeaf struct {
	in TeaLeafInputs

	u, p, r, w, kx, ky uint64
	foot               int64
}

// NewTeaLeaf builds the TeaLeaf workload.
func NewTeaLeaf(in TeaLeafInputs) *TeaLeaf {
	al := newAlloc()
	t := &TeaLeaf{in: in}
	bytes := in.NX * in.NY * 8
	t.u = al.array(bytes)
	t.p = al.array(bytes)
	t.r = al.array(bytes)
	t.w = al.array(bytes)
	t.kx = al.array(bytes)
	t.ky = al.array(bytes)
	t.foot = al.used()
	return t
}

// Name implements Workload.
func (t *TeaLeaf) Name() string { return NameTeaLeaf }

// Footprint implements Workload.
func (t *TeaLeaf) Footprint() int64 { return t.foot }

// Inputs returns the constructor inputs.
func (t *TeaLeaf) Inputs() TeaLeafInputs { return t.in }

// Program implements Workload. One timestep is one Repeat of the program:
// an SVE-vectorised residual initialisation (the one trivial loop the
// compiler does vectorise, keeping the Fig. 1 percentage small but non-zero)
// followed by CGIters repetitions of the CG loop sequence
// (matvec, dot, axpy, axpy, dot, p-update), all scalar.
func (t *TeaLeaf) Program(vl int) (*Program, error) {
	if err := CheckVL(vl); err != nil {
		return nil, err
	}
	if t.in.NX < 3 || t.in.NY < 3 || t.in.Steps <= 0 || t.in.CGIters <= 0 {
		return nil, fmt.Errorf("TeaLeaf: invalid inputs %+v", t.in)
	}
	cells := t.in.NX * t.in.NY
	rowStride := t.in.NX * 8
	epv := int64(vl / 64)
	vb := uint32(vl / 8)

	d := func(i int) isa.Reg { return isa.R(isa.FP, i) }
	alphaReg, betaReg := d(30), d(31) // solver scalars, register-resident
	accReg := d(29)                   // reduction accumulator

	// init: r = u (vectorised copy; the compiler's one SVE success here).
	initB := NewBody()
	z1 := isa.R(isa.FP, 1)
	initB.Load(z1, true, Flat(t.u, int64(vb), vb))
	initB.Store(z1, true, Flat(t.r, int64(vb), vb))
	initB.SVELoopEnd()

	// matvec over interior cells:
	// w[c] = (1+2kx+2ky)p[c] - kx(p[c-1]+p[c+1]) - ky(p[c-nx]+p[c+nx]).
	// The iteration space is biased by one row plus one column so every
	// neighbour access stays inside the array.
	mvCells := (t.in.NX - 2) * (t.in.NY - 2)
	center := t.p + uint64(rowStride) + 8
	mv := NewBody()
	mv.Load(d(1), false, Flat(center, 8, 8))                   // p center
	mv.Load(d(2), false, Flat(center+8, 8, 8))                 // p east
	mv.Load(d(3), false, Flat(center-8, 8, 8))                 // p west
	mv.Load(d(4), false, Flat(center+uint64(rowStride), 8, 8)) // p north
	mv.Load(d(5), false, Flat(center-uint64(rowStride), 8, 8)) // p south
	mv.Load(d(6), false, Flat(t.kx+uint64(rowStride)+8, 8, 8))
	mv.Load(d(7), false, Flat(t.ky+uint64(rowStride)+8, 8, 8))
	mv.Op(isa.FPMul, false, d(10), d(1), d(6))
	mv.Op(isa.FPFMA, false, d(10), d(2), d(6), d(10))
	mv.Op(isa.FPFMA, false, d(10), d(3), d(6), d(10))
	mv.Op(isa.FPFMA, false, d(10), d(4), d(7), d(10))
	mv.Op(isa.FPFMA, false, d(10), d(5), d(7), d(10))
	mv.Store(d(10), false, Flat(t.w+uint64(rowStride)+8, 8, 8))
	mv.ScalarLoopEnd()

	// dot(p, w) — serial FMA reduction chain, the low-ILP loop of the app.
	dot1 := NewBody()
	dot1.Load(d(1), false, Flat(t.p, 8, 8))
	dot1.Load(d(2), false, Flat(t.w, 8, 8))
	dot1.Op(isa.FPFMA, false, accReg, d(1), d(2), accReg)
	dot1.ScalarLoopEnd()

	// axpy: u += alpha*p
	ax1 := NewBody()
	ax1.Load(d(1), false, Flat(t.p, 8, 8))
	ax1.Load(d(2), false, Flat(t.u, 8, 8))
	ax1.Op(isa.FPFMA, false, d(3), d(1), alphaReg, d(2))
	ax1.Store(d(3), false, Flat(t.u, 8, 8))
	ax1.ScalarLoopEnd()

	// axpy: r -= alpha*w
	ax2 := NewBody()
	ax2.Load(d(1), false, Flat(t.w, 8, 8))
	ax2.Load(d(2), false, Flat(t.r, 8, 8))
	ax2.Op(isa.FPFMA, false, d(3), d(1), alphaReg, d(2))
	ax2.Store(d(3), false, Flat(t.r, 8, 8))
	ax2.ScalarLoopEnd()

	// dot(r, r)
	dot2 := NewBody()
	dot2.Load(d(1), false, Flat(t.r, 8, 8))
	dot2.Op(isa.FPFMA, false, accReg, d(1), d(1), accReg)
	dot2.ScalarLoopEnd()

	// p = r + beta*p
	pup := NewBody()
	pup.Load(d(1), false, Flat(t.p, 8, 8))
	pup.Load(d(2), false, Flat(t.r, 8, 8))
	pup.Op(isa.FPFMA, false, d(3), d(1), betaReg, d(2))
	pup.Store(d(3), false, Flat(t.p, 8, 8))
	pup.ScalarLoopEnd()

	// jacobi: u_new[c] = (u0[c] + kx*(u[w]+u[e]) + ky*(u[s]+u[n])) * rdiag
	// — the same stencil traffic as matvec but with no reduction anywhere.
	jb := NewBody()
	jb.Load(d(1), false, Flat(center, 8, 8))
	jb.Load(d(2), false, Flat(center+8, 8, 8))
	jb.Load(d(3), false, Flat(center-8, 8, 8))
	jb.Load(d(4), false, Flat(center+uint64(rowStride), 8, 8))
	jb.Load(d(5), false, Flat(center-uint64(rowStride), 8, 8))
	jb.Load(d(6), false, Flat(t.kx+uint64(rowStride)+8, 8, 8))
	jb.Load(d(7), false, Flat(t.ky+uint64(rowStride)+8, 8, 8))
	jb.Load(d(8), false, Flat(t.u+uint64(rowStride)+8, 8, 8))
	jb.Op(isa.FPAdd, false, d(10), d(2), d(3))
	jb.Op(isa.FPMul, false, d(10), d(10), d(6))
	jb.Op(isa.FPFMA, false, d(10), d(4), d(7), d(10))
	jb.Op(isa.FPFMA, false, d(10), d(5), d(7), d(10))
	jb.Op(isa.FPAdd, false, d(10), d(10), d(8))
	jb.Op(isa.FPMul, false, d(11), d(10), alphaReg) // * reciprocal diagonal
	jb.Store(d(11), false, Flat(t.w+uint64(rowStride)+8, 8, 8))
	jb.ScalarLoopEnd()

	// jacobi pointer swap stands in as a copy: u = u_new.
	jc := NewBody()
	jc.Load(d(1), false, Flat(t.w, 8, 8))
	jc.Store(d(1), false, Flat(t.p, 8, 8))
	jc.ScalarLoopEnd()

	loops := []Loop{initB.Loop("init", ceilDiv(cells, epv))}
	for it := int64(0); it < t.in.CGIters; it++ {
		switch t.in.Solver {
		case SolverJacobi:
			loops = append(loops,
				jb.Loop("jacobi", mvCells),
				jc.Loop("jacobi_copy", cells),
			)
		case SolverCheby:
			// Chebyshev: one reduction-free matvec plus two AXPYs with
			// precomputed theta/sigma scalars.
			loops = append(loops,
				mv.Loop("matvec", mvCells),
				ax1.Loop("cheby_u", cells),
				ax2.Loop("cheby_r", cells),
			)
		default:
			loops = append(loops,
				mv.Loop("matvec", mvCells),
				dot1.Loop("dot_pw", cells),
				ax1.Loop("axpy_u", cells),
				ax2.Loop("axpy_r", cells),
				dot2.Loop("dot_rr", cells),
				pup.Loop("p_update", cells),
			)
		}
	}
	// Each CG iteration replays the same six loop bodies. They are laid
	// out at distinct PCs (compiled code would share one copy under an
	// outer loop, but with no L1I model the only PC-sensitive structure is
	// the innermost-loop buffer, which re-locks on re-entry either way).
	return BuildProgram(CodeBase, t.in.Steps, loops...)
}

// Validate implements Workload: it runs an actual CG solve of the implicit
// heat-conduction step on the reference grid and checks that the residual
// norm is reduced and the converged solution satisfies the linear system.
func (t *TeaLeaf) Validate() error {
	nx, ny := int(t.in.NX), int(t.in.NY)
	if nx < 3 || ny < 3 {
		return fmt.Errorf("TeaLeaf: grid %dx%d too small", nx, ny)
	}
	n := nx * ny
	idx := func(x, y int) int { return y*nx + x }

	// Conductivities and initial field: the bm-style two-state region.
	kx := make([]float64, n)
	ky := make([]float64, n)
	u := make([]float64, n)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			k := 1.0
			if x < nx/2 && y < ny/2 {
				k = 10.0 // the hot chimney region of the benchmark deck
			}
			kx[idx(x, y)] = k * t.in.Dt
			ky[idx(x, y)] = k * t.in.Dt
			u[idx(x, y)] = 0.1
			if x > nx/4 && x < nx/2 && y > ny/4 && y < ny/2 {
				u[idx(x, y)] = 10.0
			}
		}
	}

	// A·v for the implicit operator (I - div K grad) with insulated edges.
	apply := func(v, out []float64) {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				c := idx(x, y)
				diag := 1.0
				var off float64
				if x > 0 {
					diag += kx[c]
					off -= kx[c] * v[idx(x-1, y)]
				}
				if x < nx-1 {
					diag += kx[idx(x+1, y)]
					off -= kx[idx(x+1, y)] * v[idx(x+1, y)]
				}
				if y > 0 {
					diag += ky[c]
					off -= ky[c] * v[idx(x, y-1)]
				}
				if y < ny-1 {
					diag += ky[idx(x, y+1)]
					off -= ky[idx(x, y+1)] * v[idx(x, y+1)]
				}
				out[c] = diag*v[c] + off
			}
		}
	}

	dot := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	_ = dot

	if t.in.Solver == SolverJacobi {
		return t.validateJacobi(nx, ny, kx, ky, u, apply, dot)
	}
	for step := int64(0); step < t.in.Steps; step++ {
		b := make([]float64, n)
		copy(b, u)
		x := make([]float64, n)
		copy(x, u)
		r := make([]float64, n)
		w := make([]float64, n)
		apply(x, w)
		for i := range r {
			r[i] = b[i] - w[i]
		}
		p := make([]float64, n)
		copy(p, r)
		rr := dot(r, r)
		rr0 := rr
		for it := 0; it < 10_000 && rr > 1e-20*rr0 && rr > 1e-24; it++ {
			apply(p, w)
			alpha := rr / dot(p, w)
			for i := range x {
				x[i] += alpha * p[i]
				r[i] -= alpha * w[i]
			}
			rrNew := dot(r, r)
			beta := rrNew / rr
			rr = rrNew
			for i := range p {
				p[i] = r[i] + beta*p[i]
			}
		}
		if rr > 1e-12*rr0 {
			return fmt.Errorf("TeaLeaf validation: CG failed to converge at step %d (rr %g of %g)", step, rr, rr0)
		}
		// Converged solution must satisfy the system.
		apply(x, w)
		for i := range w {
			if math.Abs(w[i]-b[i]) > 1e-6*(1+math.Abs(b[i])) {
				return fmt.Errorf("TeaLeaf validation: residual check failed at cell %d: %g vs %g", i, w[i], b[i])
			}
			if math.IsNaN(x[i]) {
				return fmt.Errorf("TeaLeaf validation: NaN at cell %d", i)
			}
		}
		u = x
	}
	return nil
}

// validateJacobi runs the reference Jacobi iteration on the implicit system
// and checks that the residual shrinks monotonically-enough and the final
// solution is physical. Jacobi converges for this diagonally dominant
// operator, but far more slowly than CG, so the check is on progress rather
// than full convergence.
func (t *TeaLeaf) validateJacobi(nx, ny int, kx, ky, u []float64,
	apply func(v, out []float64), dot func(a, b []float64) float64) error {
	n := nx * ny
	idx := func(x, y int) int { return y*nx + x }
	b := make([]float64, n)
	copy(b, u)
	x := make([]float64, n)
	copy(x, u)
	xNew := make([]float64, n)
	resid := func() float64 {
		w := make([]float64, n)
		apply(x, w)
		var s float64
		for i := range w {
			d := w[i] - b[i]
			s += d * d
		}
		return s
	}
	r0 := resid()
	for it := 0; it < 500; it++ {
		for yy := 0; yy < ny; yy++ {
			for xx := 0; xx < nx; xx++ {
				c := idx(xx, yy)
				diag := 1.0
				var off float64
				if xx > 0 {
					diag += kx[c]
					off += kx[c] * x[idx(xx-1, yy)]
				}
				if xx < nx-1 {
					diag += kx[idx(xx+1, yy)]
					off += kx[idx(xx+1, yy)] * x[idx(xx+1, yy)]
				}
				if yy > 0 {
					diag += ky[c]
					off += ky[c] * x[idx(xx, yy-1)]
				}
				if yy < ny-1 {
					diag += ky[idx(xx, yy+1)]
					off += ky[idx(xx, yy+1)] * x[idx(xx, yy+1)]
				}
				xNew[c] = (b[c] + off) / diag
			}
		}
		x, xNew = xNew, x
	}
	rEnd := resid()
	if !(rEnd < r0*1e-3) {
		return fmt.Errorf("TeaLeaf validation: Jacobi made no progress (residual %g -> %g)", r0, rEnd)
	}
	for i := range x {
		if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
			return fmt.Errorf("TeaLeaf validation: Jacobi produced non-finite value at %d", i)
		}
	}
	_ = dot
	return nil
}
